// Package server is the network face of the compiler: an HTTP/JSON API
// over core.Service, shaped for heavy traffic rather than demos. A request
// is a CompileRequest (graph spec + topology spec + normalized options);
// a response is the versioned artifact encoding — the wire format IS the
// artifact format, so a disk-cache hit is served without touching the
// pipeline and a client round-trips through artifact.Decode.
//
// The request path is admission → coalesce → cache → pipeline:
//
//   - Admission control bounds the compiles in flight (MaxInFlight) and
//     the queue behind them (MaxQueue); beyond that the server sheds load
//     with 429 + Retry-After instead of collapsing.
//   - Coalescing singleflights identical requests on the same key the
//     cache uses, so a thundering herd of one graph costs one compile and
//     one artifact encode.
//   - core.Service then applies its cache tiers (memory LRU, disk
//     artifacts, optional shared store) before the pipeline runs.
//
// In fleet mode (Config.Fleet) N servers act as one cache: a
// consistent-hash ring assigns every key an owner, non-owned requests
// are answered from local caches, fetched from the owner as raw
// artifact bytes, proxied one hop, or redirected — see fleet.go and
// DESIGN.md S17.
//
// /healthz reports liveness (503 while draining) and, in a fleet,
// per-peer reachability; /stats serves the Stats counters. See
// DESIGN.md S14.
package server

import (
	"container/list"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"streammap/internal/artifact"
	"streammap/internal/core"
	"streammap/internal/driver"
	"streammap/internal/faultinject"
	"streammap/internal/fleet"
	"streammap/internal/obs"
	"streammap/internal/sdf"
	"streammap/internal/topology"
)

// Config tunes a compile server.
type Config struct {
	// Service configures the underlying two-tier compile cache.
	Service core.ServiceConfig
	// MaxInFlight bounds requests holding a compile slot (default
	// GOMAXPROCS). Coalesced joiners don't consume slots.
	MaxInFlight int
	// MaxQueue bounds requests waiting for a slot; beyond it requests are
	// rejected with 429 (default 4*MaxInFlight).
	MaxQueue int
	// RequestTimeout caps one request's wall-clock from admission to
	// artifact (default 60s). Expiry answers 504; the underlying
	// compilation still completes and populates the cache (core.Service
	// detaches it), so a retry hits.
	RequestTimeout time.Duration
	// RetryAfter is the backoff hint sent with 429 (default 1s).
	RetryAfter time.Duration
	// MaxBodyBytes caps request bodies (default 32 MiB).
	MaxBodyBytes int64
	// CompileWorkers bounds each compilation's internal worker pools
	// (Options.Workers, default GOMAXPROCS). Requests cannot set it: the
	// server owns its parallelism budget.
	CompileWorkers int
	// Fleet, when enabled (SelfURL + at least one other peer), turns this
	// node into a member of a consistent-hash serving fleet: compile
	// requests for keys another node owns are answered from the local
	// cache when possible and otherwise fetched from or proxied to the
	// owner; /v1/artifact/{key} serves raw artifact bytes to peers. See
	// DESIGN.md S17.
	Fleet fleet.Config
	// Faults, when non-nil, threads deterministic fault injection through
	// the peer transport (refusals, latency, corrupted/truncated bodies)
	// and the membership/breaker clocks (skew), and is passed down to the
	// service's disk tier. Chaos-tier testing only; nil in production,
	// where every seam is a no-op. See DESIGN.md S18.
	Faults *faultinject.Injector
	// Logger receives the server's structured log records (request debug
	// lines, fleet transitions, cache quarantines), each stamped with the
	// request's trace ID. Nil discards. See DESIGN.md S19.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 4 * c.MaxInFlight
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 60 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 32 << 20
	}
	return c
}

// flightCall is one in-flight compile+encode shared by every coalesced
// request with the same key. The response triple is immutable once done
// closes.
type flightCall struct {
	done        chan struct{}
	status      int
	contentType string
	body        []byte
}

// Server serves compile requests over HTTP. Create with New, mount with
// Handler, drain with SetDraining before shutdown.
type Server struct {
	cfg   Config
	svc   *core.Service
	start time.Time

	slots chan struct{}

	flightMu sync.Mutex
	flight   map[string]*flightCall

	// The encoded-response memo (see encodedResponse): artifact bytes by
	// result identity, LRU-bounded to the service cache's entry count.
	respMu    sync.Mutex
	respLRU   *list.List // of *respItem, most recent at front
	respByPtr map[*core.Compiled]*list.Element
	respBound int

	// Fleet state: nil membership means single-node serving.
	fleetM       *fleet.Membership
	breaker      *fleet.Breaker
	peerHTTP     *http.Client
	proxied      atomic.Int64
	redirects    atomic.Int64
	peerHits     atomic.Int64
	localHits    atomic.Int64
	forwarded    atomic.Int64
	fallbacks    atomic.Int64
	peerBadBytes atomic.Int64
	peerRetries  atomic.Int64
	breakerSkips atomic.Int64

	requests  atomic.Int64
	remaps    atomic.Int64
	inFlight  atomic.Int64
	queued    atomic.Int64
	coalesced atomic.Int64
	rejected  atomic.Int64
	errs      atomic.Int64
	encodes   atomic.Int64
	draining  atomic.Bool
	lat       latencyRing

	// Observability: one registry and tracer per server, threaded down
	// into the service and across fleet hops. See DESIGN.md S19.
	reg    *obs.Registry
	tracer *obs.Tracer
	log    *slog.Logger
	met    *serverMetrics
}

// respItem is one memoized response body.
type respItem struct {
	c    *core.Compiled
	body []byte
}

// New returns a compile server over a fresh core.Service. An invalid
// fleet configuration panics: it is a deployment error caught at process
// start, never a request-time condition.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	if cfg.Service.Faults == nil {
		// One injector drives every seam in the node unless the service was
		// handed its own.
		cfg.Service.Faults = cfg.Faults
	}
	log := cfg.Logger
	if log == nil {
		log = slog.New(slog.DiscardHandler)
	}
	reg := obs.NewRegistry()
	node := ""
	if cfg.Fleet.Enabled() {
		node = cfg.Fleet.SelfURL
	}
	// The service shares the server's registry and logger so one /metrics
	// exposition and one log stream cover the whole node.
	if cfg.Service.Metrics == nil {
		cfg.Service.Metrics = reg
	}
	if cfg.Service.Logger == nil {
		cfg.Service.Logger = log
	}
	respBound := cfg.Service.MaxEntries
	if respBound <= 0 {
		respBound = 256 // core.ServiceConfig's own default
	}
	s := &Server{
		cfg:       cfg,
		svc:       core.NewService(cfg.Service),
		start:     time.Now(),
		slots:     make(chan struct{}, cfg.MaxInFlight),
		flight:    map[string]*flightCall{},
		respLRU:   list.New(),
		respByPtr: map[*core.Compiled]*list.Element{},
		respBound: respBound,
		reg:       reg,
		tracer:    obs.NewTracer(obs.TracerConfig{Node: node}),
		log:       log,
	}
	if cfg.Fleet.Enabled() {
		m, err := fleet.NewMembership(cfg.Fleet)
		if err != nil {
			panic(fmt.Sprintf("server: fleet config: %v", err))
		}
		s.fleetM = m
		s.breaker = fleet.NewBreaker(fleet.BreakerConfig{
			Failures: cfg.Fleet.BreakerFailures,
			Cooldown: m.Config().DownCooldown,
			Retries:  cfg.Fleet.PeerRetries,
			Backoff:  cfg.Fleet.RetryBackoff,
		})
		// Peer calls ride the caller's request context for cancellation;
		// the client timeout is a backstop against a peer that accepts and
		// stalls. The fault injector's transport wrapper is identity when
		// injection is off.
		s.peerHTTP = &http.Client{
			Timeout:   cfg.RequestTimeout,
			Transport: cfg.Faults.Transport(nil),
		}
		if cfg.Faults != nil {
			// Chaos tier: cooldown revival on both the ring and the breaker
			// reads a skewed clock.
			s.fleetM.SetClock(cfg.Faults.Clock(nil))
			s.breaker.SetClock(cfg.Faults.Clock(nil))
		}
		s.fleetM.SetLogger(s.log)
	}
	s.met = newServerMetrics(s)
	return s
}

// Breaker exposes the per-peer circuit breaker (nil outside fleet mode) —
// tests and the chaos harness read its open count.
func (s *Server) Breaker() *fleet.Breaker { return s.breaker }

// Service exposes the underlying compile service (tests and embedders).
func (s *Server) Service() *core.Service { return s.svc }

// SetDraining flips the drain flag: while set, /healthz answers 503 so
// load balancers stop routing here, and new compile requests are refused
// with 503. In-flight requests are unaffected — pair with
// http.Server.Shutdown, which already waits for them.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// Handler returns the server's routes:
//
//	POST /v1/compile         CompileRequest -> encoded artifact
//	POST /v1/remap           RemapRequest -> encoded artifact for the degraded machine
//	GET  /v1/artifact/{key}  raw encoded artifact bytes by key hash (peer fetch)
//	GET  /healthz            liveness (503 while draining; fleet peer states)
//	GET  /stats              Stats counters
//	GET  /metrics            Prometheus text exposition
//	GET  /debug/traces       retained request traces (recent + slowest)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/compile", s.traced("compile", s.handleCompile))
	mux.HandleFunc("POST /v1/remap", s.traced("remap", s.handleRemap))
	mux.HandleFunc("GET /v1/artifact/{key}", s.traced("artifact", s.handleArtifact))
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /debug/traces", s.handleTraces)
	return mux
}

// Stats snapshots the server counters.
func (s *Server) Stats() Stats {
	st := Stats{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Requests:      s.requests.Load(),
		Remaps:        s.remaps.Load(),
		InFlight:      s.inFlight.Load(),
		Queued:        s.queued.Load(),
		Coalesced:     s.coalesced.Load(),
		Rejected:      s.rejected.Load(),
		Errors:        s.errs.Load(),
		Encodes:       s.encodes.Load(),
		Latency:       s.lat.snapshot(),
		Service:       s.svc.Stats(),
	}
	if s.fleetM != nil {
		st.Fleet = &FleetStats{
			Self:            s.fleetM.Self(),
			PeersTotal:      len(s.fleetM.Peers()) + 1,
			PeersAlive:      len(s.fleetM.Alive()),
			Proxied:         s.proxied.Load(),
			Redirects:       s.redirects.Load(),
			PeerHits:        s.peerHits.Load(),
			LocalHits:       s.localHits.Load(),
			ForwardedServed: s.forwarded.Load(),
			Fallbacks:       s.fallbacks.Load(),
			RingMoves:       s.fleetM.RingMoves(),
			PeerBadBytes:    s.peerBadBytes.Load(),
			PeerRetries:     s.peerRetries.Load(),
			BreakerOpens:    s.breaker.Opens(),
			BreakerSkips:    s.breakerSkips.Load(),
		}
	}
	return st
}

// handleHealthz reports this node's serving state. Single-node: "ok" or
// (503) "draining". In a fleet the body also carries per-peer
// reachability, and an unreachable or draining peer degrades the status
// to "degraded" — still 200: this node serves fine, the fleet is just
// short-handed. Only draining is a 503, because only draining means
// "stop routing here".
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := Health{Status: "ok"}
	if s.draining.Load() {
		h.Status = "draining"
	}
	if s.fleetM != nil && r.Header.Get(headerProbe) == "" {
		h.Peers = s.probePeers(r.Context())
		if h.Status == "ok" {
			for _, p := range h.Peers {
				if p.State != "ok" {
					h.Status = "degraded"
					break
				}
			}
		}
	}
	status := http.StatusOK
	if h.Status == "draining" {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, h)
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	start := time.Now()
	// A request proxied here by a peer is recorded in the proxying node's
	// latency window, not double-counted in ours (see finish).
	forwarded := r.Header.Get(headerForwarded) != ""
	if forwarded {
		s.forwarded.Add(1)
	}
	if s.draining.Load() {
		s.errs.Add(1)
		http.Error(w, "server is draining", http.StatusServiceUnavailable)
		return
	}

	// The body is buffered rather than stream-decoded: a request this
	// node does not own may need to travel on, verbatim, to the key's
	// owner.
	rawBody, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("reading request: %w", err))
		return
	}
	var req CompileRequest
	if err := json.Unmarshal(rawBody, &req); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	g, err := sdf.ImportGraph(req.Graph)
	if err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("importing graph: %w", err))
		return
	}
	opts, err := driver.ImportOptions(req.Options)
	if err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("importing options: %w", err))
		return
	}
	opts.Workers = s.cfg.CompileWorkers
	key, err := core.KeyOf(g, opts)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}

	// Fleet routing: a request for a key another node owns is served from
	// the local cache, fetched from the owner, proxied, or redirected —
	// unless it was already forwarded once (one hop, never a cycle).
	if s.fleetM != nil && !forwarded {
		if owner := s.fleetM.Owner(core.KeyHash(key)); owner != s.fleetM.Self() {
			if s.routeToOwner(w, r, start, owner, key, g, opts, rawBody) {
				return
			}
			// Owner unreachable: serve locally rather than fail. The result
			// still lands in the shared store, so the fleet converges.
			s.fallbacks.Add(1)
			s.log.LogAttrs(r.Context(), slog.LevelWarn, "owner unreachable; compiling locally",
				slog.String("owner", owner), obs.TraceAttr(r.Context()))
		}
	}

	s.serveFlight(w, r, start, key, forwarded, func(ctx context.Context) (int, string, []byte) {
		return s.compile(ctx, g, opts)
	})
}

// handleRemap re-targets a previously compiled artifact onto a degraded
// topology. It rides the same admission and coalescing path as compile —
// a fleet event takes out a device under many clients at once, and their
// identical (artifact, degradation) requests must cost one remap, not a
// stampede — but bypasses the compile cache: the artifact is the input,
// not a cache key.
func (s *Server) handleRemap(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	s.remaps.Add(1)
	start := time.Now()
	if s.draining.Load() {
		s.errs.Add(1)
		http.Error(w, "server is draining", http.StatusServiceUnavailable)
		return
	}

	var req RemapRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	a, err := artifact.Decode(req.Artifact)
	if err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("decoding artifact: %w", err))
		return
	}
	// Degrading up front validates the event against the artifact's own
	// topology (a stale picture of the machine is the client's error, not
	// the server's) and hands Remap the survival map for its warm start.
	degraded, gpuMap, err := driver.Degrade(a, req.Degradation)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	key, err := remapKey(a, req.Degradation)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	s.serveFlight(w, r, start, key, false, func(ctx context.Context) (int, string, []byte) {
		return s.remap(ctx, a, degraded, gpuMap)
	})
}

// serveFlight answers one request through the flight table: joiners ride
// an existing flight for key, otherwise this request leads — it passes
// admission, runs run under the request timeout, and resolves the flight
// for every joiner. Coalescing happens before admission: joiners never
// consume a slot or queue space, so a thundering herd of one key can
// never trip its own backpressure. forwarded marks a request proxied here
// by a peer: its latency is recorded at the proxying node instead, and
// its 200 body is stamped with a content hash so the proxying node can
// verify the relay.
func (s *Server) serveFlight(w http.ResponseWriter, r *http.Request, start time.Time, key string,
	forwarded bool, run func(ctx context.Context) (status int, contentType string, body []byte)) {
	s.flightMu.Lock()
	if call, ok := s.flight[key]; ok {
		s.flightMu.Unlock()
		s.coalesced.Add(1)
		_, span := obs.StartSpan(r.Context(), "coalesce.join")
		select {
		case <-call.done:
			span.End()
			s.finish(w, call, start, forwarded)
		case <-r.Context().Done():
			// Client gone; nothing useful to write.
			span.SetNote("client gone")
			span.End()
		}
		return
	}
	call := &flightCall{done: make(chan struct{})}
	s.flight[key] = call
	s.flightMu.Unlock()

	// Leader: the flight must always be resolved and retired on every exit
	// path — including a panic below (net/http recovers it): an unresolved
	// flight would strand coalesced joiners forever, and a leaked slot
	// would shrink MaxInFlight for the rest of the process's life.
	resolve := func(status int, contentType string, body []byte) {
		call.status, call.contentType, call.body = status, contentType, body
		close(call.done)
	}
	defer func() {
		s.flightMu.Lock()
		delete(s.flight, key)
		s.flightMu.Unlock()
	}()
	defer func() {
		select {
		case <-call.done:
		default:
			resolve(http.StatusInternalServerError, "text/plain; charset=utf-8",
				[]byte("internal error: request handler aborted\n"))
		}
	}()

	admitStart := time.Now()
	_, admitSpan := obs.StartSpan(r.Context(), "admission.wait")
	release, ok := s.admit(r.Context())
	s.met.admissionWait.ObserveSince(admitStart)
	if !ok {
		admitSpan.SetNote("not admitted")
		admitSpan.End()
		if r.Context().Err() != nil {
			// The leader's client vanished while queued — that's not
			// backpressure. Joiners get a retryable 503, not a 429.
			resolve(http.StatusServiceUnavailable, "text/plain; charset=utf-8",
				[]byte("leading request cancelled while queued; retry\n"))
		} else {
			resolve(http.StatusTooManyRequests, "text/plain; charset=utf-8",
				[]byte(fmt.Sprintf("compile queue full (%d in flight, %d queued)\n",
					s.cfg.MaxInFlight, s.cfg.MaxQueue)))
		}
		s.finish(w, call, start, forwarded)
		return
	}
	admitSpan.End()
	defer release()

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	status, contentType, payload := run(ctx)
	resolve(status, contentType, payload)
	s.finish(w, call, start, forwarded)
}

// admit takes a compile slot, queueing up to MaxQueue requests behind the
// MaxInFlight running ones. It returns ok=false when the queue is full or
// the caller's context ends first; on ok the returned release must be
// called exactly once.
func (s *Server) admit(ctx context.Context) (release func(), ok bool) {
	// The queued gauge counts waiters including those about to take a free
	// slot, so the bound is approximate by design: admission must stay one
	// atomic, not a lock around the semaphore.
	if s.queued.Add(1) > int64(s.cfg.MaxQueue) {
		s.queued.Add(-1)
		return nil, false
	}
	select {
	case s.slots <- struct{}{}:
		s.queued.Add(-1)
		s.inFlight.Add(1)
		return func() {
			s.inFlight.Add(-1)
			<-s.slots
		}, true
	case <-ctx.Done():
		s.queued.Add(-1)
		return nil, false
	}
}

// compile runs one admitted compilation to its response triple.
func (s *Server) compile(ctx context.Context, g *sdf.Graph, opts core.Options) (status int, contentType string, body []byte) {
	c, err := s.svc.Compile(ctx, g, opts)
	if err != nil {
		return errorResponse(err)
	}
	body, err = s.encodedResponse(c)
	if err != nil {
		return http.StatusInternalServerError, "text/plain; charset=utf-8", []byte(err.Error() + "\n")
	}
	return http.StatusOK, "application/json", body
}

// remap runs one admitted remap to its response triple. No response memo:
// remaps are rare fleet events whose herds the flight table already
// coalesces, and the input artifact — not a service cache entry — is the
// identity, so there is no *core.Compiled to memoize under.
func (s *Server) remap(ctx context.Context, a *artifact.Artifact, degraded *topology.Tree, gpuMap []int) (status int, contentType string, body []byte) {
	c, err := driver.Remap(ctx, a, degraded, driver.RemapOptions{Workers: s.cfg.CompileWorkers, GPUMap: gpuMap})
	if err != nil {
		return errorResponse(err)
	}
	ra, err := c.Artifact()
	if err != nil {
		return http.StatusInternalServerError, "text/plain; charset=utf-8", []byte(err.Error() + "\n")
	}
	s.encodes.Add(1)
	body, err = ra.Encode()
	if err != nil {
		return http.StatusInternalServerError, "text/plain; charset=utf-8", []byte(err.Error() + "\n")
	}
	return http.StatusOK, "application/json", body
}

// errorResponse maps a pipeline error to its response triple. Deadline
// expiry is the request timeout (504). Cancellation means the leader's
// client vanished mid-run; any coalesced joiners should retry (a detached
// compile is still populating the cache), not report a server error.
func errorResponse(err error) (int, string, []byte) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		status = http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		status = http.StatusServiceUnavailable
	}
	return status, "text/plain; charset=utf-8", []byte(err.Error() + "\n")
}

// encodedResponse returns the artifact encoding of a compilation,
// memoizing by result identity: the service hands every caller with an
// equal key the same immutable *Compiled, so its bytes (Stages provenance
// included) can never go stale under this key, and a cache-hit request
// costs a map lookup instead of a full artifact export + JSON marshal.
// A recompile after LRU eviction yields a new pointer, hence fresh bytes.
func (s *Server) encodedResponse(c *core.Compiled) ([]byte, error) {
	s.respMu.Lock()
	if el, ok := s.respByPtr[c]; ok {
		s.respLRU.MoveToFront(el)
		body := el.Value.(*respItem).body
		s.respMu.Unlock()
		return body, nil
	}
	s.respMu.Unlock()

	s.encodes.Add(1)
	a, err := c.Artifact()
	if err != nil {
		return nil, err
	}
	body, err := a.Encode()
	if err != nil {
		return nil, err
	}

	s.respMu.Lock()
	if _, ok := s.respByPtr[c]; !ok {
		s.respByPtr[c] = s.respLRU.PushFront(&respItem{c: c, body: body})
		for s.respLRU.Len() > s.respBound {
			back := s.respLRU.Back()
			s.respLRU.Remove(back)
			delete(s.respByPtr, back.Value.(*respItem).c)
		}
	}
	s.respMu.Unlock()
	return body, nil
}

// finish writes a resolved flight to one requester and records the
// request's latency and error counters. forwarded marks a request a peer
// proxied here: the proxying node records the client-observed latency
// (recording it again at the owner would double-count every proxied
// request), and the 200 body is stamped with headerContentHash so the
// relay back through the proxying node is integrity-checked end to end —
// only on forwarded requests, so directly served traffic never pays the
// hash.
func (s *Server) finish(w http.ResponseWriter, call *flightCall, start time.Time, forwarded bool) {
	switch {
	case call.status == http.StatusTooManyRequests:
		s.rejected.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.cfg.RetryAfter)))
	case call.status != http.StatusOK:
		s.errs.Add(1)
	}
	if forwarded && call.status == http.StatusOK {
		w.Header().Set(headerContentHash, contentHash(call.body))
	}
	w.Header().Set("Content-Type", call.contentType)
	w.WriteHeader(call.status)
	w.Write(call.body)
	// Rejected requests enter the window too: a 429's admission wait is
	// latency the client observed, and a window that hides shed load
	// reports p99s that look better the worse the overload gets.
	if !forwarded {
		s.lat.record(float64(time.Since(start).Microseconds()) / 1e3)
	}
}

// fail answers a request that never reached a flight (malformed input).
func (s *Server) fail(w http.ResponseWriter, status int, err error) {
	s.errs.Add(1)
	http.Error(w, err.Error(), status)
}

func retryAfterSeconds(d time.Duration) int {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(v)
}
