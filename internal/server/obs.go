package server

import (
	"log/slog"
	"net/http"
	"sync/atomic"
	"time"

	"streammap/internal/obs"
)

// The server half of the node's observability (see DESIGN.md S19): every
// request gets a trace (GET /debug/traces) and lands in the per-route
// metrics (GET /metrics). The existing /stats atomics remain the source
// of truth for their counters — they are bridged into the exposition at
// scrape time, so /stats and /metrics can never disagree — and only the
// new latency histograms are recorded directly.

// serverMetrics holds the instruments the request path records into.
type serverMetrics struct {
	reqCompile  *obs.Counter
	reqRemap    *obs.Counter
	reqArtifact *obs.Counter

	durCompile *obs.Histogram
	durRemap   *obs.Histogram

	// admissionWait is the time a leader spent waiting for a compile slot,
	// rejected and cancelled leaders included — shed load is exactly when
	// the wait matters.
	admissionWait *obs.Histogram

	// respClass counts responses by route and status class; keys are
	// "route/class" over the fixed route and class sets.
	respClass map[string]*obs.Counter
}

var respClasses = []string{"1xx", "2xx", "3xx", "4xx", "5xx"}

// newServerMetrics registers the server's metrics on s.reg and bridges
// the /stats atomics in. Call once from New, after the fleet state exists.
func newServerMetrics(s *Server) *serverMetrics {
	reg := s.reg
	m := &serverMetrics{
		reqCompile: reg.Counter("streammap_http_requests_total",
			"Requests received by route.", obs.Label{Key: "route", Value: "compile"}),
		reqRemap: reg.Counter("streammap_http_requests_total",
			"Requests received by route.", obs.Label{Key: "route", Value: "remap"}),
		reqArtifact: reg.Counter("streammap_http_requests_total",
			"Requests received by route.", obs.Label{Key: "route", Value: "artifact"}),
		durCompile: reg.Histogram("streammap_request_duration_seconds",
			"Request wall-clock by route, all outcomes.", nil, obs.Label{Key: "route", Value: "compile"}),
		durRemap: reg.Histogram("streammap_request_duration_seconds",
			"Request wall-clock by route, all outcomes.", nil, obs.Label{Key: "route", Value: "remap"}),
		admissionWait: reg.Histogram("streammap_admission_wait_seconds",
			"Time leaders spent waiting for a compile slot, rejections included.", nil),
		respClass: map[string]*obs.Counter{},
	}
	for _, route := range []string{"compile", "remap", "artifact"} {
		for _, class := range respClasses {
			m.respClass[route+"/"+class] = reg.Counter("streammap_http_responses_total",
				"Responses written by route and status class.",
				obs.Label{Key: "route", Value: route}, obs.Label{Key: "class", Value: class})
		}
	}

	bridge := func(name, help string, v *atomic.Int64, labels ...obs.Label) {
		reg.CounterFunc(name, help, func() float64 { return float64(v.Load()) }, labels...)
	}
	bridge("streammap_coalesced_total", "Requests that joined another request's flight.", &s.coalesced)
	bridge("streammap_rejected_total", "Requests shed with 429.", &s.rejected)
	bridge("streammap_errors_total", "Requests answered with a non-429 error status.", &s.errs)
	bridge("streammap_artifact_encodes_total", "Artifact export+encode runs (hits serve memoized bytes).", &s.encodes)
	reg.GaugeFunc("streammap_in_flight", "Leaders holding a compile slot.",
		func() float64 { return float64(s.inFlight.Load()) })
	reg.GaugeFunc("streammap_queued", "Leaders waiting for a compile slot.",
		func() float64 { return float64(s.queued.Load()) })
	reg.GaugeFunc("streammap_draining", "1 while the node refuses new work ahead of shutdown.",
		func() float64 {
			if s.draining.Load() {
				return 1
			}
			return 0
		})

	if s.fleetM != nil {
		bridge("streammap_fleet_proxied_total", "Non-owned requests proxied to their owner.", &s.proxied)
		bridge("streammap_fleet_redirects_total", "Non-owned requests answered 307.", &s.redirects)
		bridge("streammap_fleet_peer_hits_total", "Non-owned requests served via peer artifact fetch.", &s.peerHits)
		bridge("streammap_fleet_local_hits_total", "Non-owned requests served from this node's own caches.", &s.localHits)
		bridge("streammap_fleet_forwarded_total", "Requests a peer proxied here.", &s.forwarded)
		bridge("streammap_fleet_fallbacks_total", "Non-owned requests compiled locally because the owner was unreachable.", &s.fallbacks)
		bridge("streammap_fleet_peer_bad_bytes_total", "Peer responses that failed integrity verification.", &s.peerBadBytes)
		bridge("streammap_fleet_peer_retries_total", "Extra peer attempts after a first transport failure.", &s.peerRetries)
		bridge("streammap_fleet_breaker_skips_total", "Non-owned requests that skipped peer I/O on an open circuit.", &s.breakerSkips)
		reg.CounterFunc("streammap_fleet_breaker_opens_total", "Circuit-open transitions across all peers.",
			func() float64 { return float64(s.breaker.Opens()) })
		reg.CounterFunc("streammap_fleet_ring_moves_permille", "Accumulated keyspace fraction that changed owners, in 1/1000ths.",
			func() float64 { return float64(s.fleetM.RingMoves()) })
		reg.GaugeFunc("streammap_fleet_peers_alive", "Fleet members currently routed to.",
			func() float64 { return float64(len(s.fleetM.Alive())) })
		reg.GaugeFunc("streammap_fleet_peers_total", "Configured fleet size, self included.",
			func() float64 { return float64(len(s.fleetM.Peers()) + 1) })
	}
	return m
}

// request increments the per-route request counter.
func (m *serverMetrics) request(route string) {
	switch route {
	case "compile":
		m.reqCompile.Inc()
	case "remap":
		m.reqRemap.Inc()
	case "artifact":
		m.reqArtifact.Inc()
	}
}

// response records one finished request: its status class and, for the
// flight routes, its wall-clock. Status 0 (client vanished before a
// response was written) counts no class.
func (m *serverMetrics) response(route string, status int, start time.Time) {
	if c := statusClass(status); c != "" {
		m.respClass[route+"/"+c].Inc()
	}
	switch route {
	case "compile":
		m.durCompile.ObserveSince(start)
	case "remap":
		m.durRemap.ObserveSince(start)
	}
}

func statusClass(status int) string {
	if status < 100 || status > 599 {
		return ""
	}
	return respClasses[status/100-1]
}

// statusWriter records the status a handler resolved to, so the route
// wrapper can finish the request's trace and metrics without threading a
// status through every helper. An unset status after a Write means an
// implicit 200; an unset status with no Write means the client vanished
// (recorded as 0).
type statusWriter struct {
	http.ResponseWriter
	stat int
}

func (w *statusWriter) WriteHeader(status int) {
	if w.stat == 0 {
		w.stat = status
	}
	w.ResponseWriter.WriteHeader(status)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.stat == 0 {
		w.stat = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) status() int { return w.stat }

// traced wraps a route handler with the request's whole observability:
// trace start/adopt (obs.TraceHeader), per-route request/response
// metrics, and a debug log record carrying the trace ID.
func (s *Server) traced(route string, h func(http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.met.request(route)
		ctx, trace := s.tracer.StartRequest(r.Context(), r.Header.Get(obs.TraceHeader), route)
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r.WithContext(ctx))
		trace.Finish(sw.status())
		s.met.response(route, sw.status(), start)
		if s.log.Enabled(ctx, slog.LevelDebug) {
			s.log.LogAttrs(ctx, slog.LevelDebug, "request",
				slog.String("route", route),
				slog.Int("status", sw.status()),
				slog.Duration("dur", time.Since(start)),
				obs.TraceAttr(ctx))
		}
	}
}

// handleMetrics serves the Prometheus text exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WriteText(w)
}

// handleTraces serves the retained traces: the most recent plus the
// slowest seen.
func (s *Server) handleTraces(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.tracer.Snapshot())
}
