package partition

import (
	"fmt"

	"streammap/internal/artifact"
	"streammap/internal/pee"
	"streammap/internal/sdf"
	"streammap/internal/smreq"
)

// Export returns the partition's wire form: its node set, granularity
// scale, the estimator's verdict and the shared-memory layout (recomputed
// deterministically from the subgraph — the same analysis the estimator and
// the code generator share).
func Export(p *Partition) (artifact.Partition, error) {
	lay, err := smreq.Analyze(p.Sub)
	if err != nil {
		return artifact.Partition{}, fmt.Errorf("partition: export: %w", err)
	}
	out := artifact.Partition{
		Scale:  p.Sub.Scale,
		Est:    p.Est.Export(),
		Layout: smreq.Export(lay),
	}
	for _, m := range p.Set.Members() {
		out.Nodes = append(out.Nodes, int(m))
	}
	return out, nil
}

// Import rebuilds a Partition over g from its wire form. The subgraph is
// re-extracted deterministically from the node set; the estimate is
// restored verbatim (never re-estimated), so a decoded partition carries
// exactly the kernel parameters the original compilation selected.
func Import(g *sdf.Graph, a artifact.Partition) (*Partition, error) {
	set, err := sdf.NodeSetOf(g.NumNodes(), a.Nodes)
	if err != nil {
		return nil, fmt.Errorf("partition: import: %w", err)
	}
	sub, err := g.Extract(set)
	if err != nil {
		return nil, fmt.Errorf("partition: import: %w", err)
	}
	if sub.Scale != a.Scale {
		return nil, fmt.Errorf("partition: import: extracted scale %d, artifact says %d (graph mismatch?)", sub.Scale, a.Scale)
	}
	// The serialized layout is held to a fresh analysis of the extracted
	// subgraph: the wire data exists for inspection, and inspection data
	// that can silently disagree with what codegen would use is worse than
	// none.
	wire, err := smreq.Import(a.Layout)
	if err != nil {
		return nil, err
	}
	fresh, err := smreq.Analyze(sub)
	if err != nil {
		return nil, fmt.Errorf("partition: import: %w", err)
	}
	if err := smreq.Equal(wire, fresh); err != nil {
		return nil, fmt.Errorf("partition: import: serialized SM layout disagrees with the subgraph: %w", err)
	}
	est, err := pee.ImportEstimate(a.Est)
	if err != nil {
		return nil, err
	}
	return &Partition{Set: set, Sub: sub, Est: est}, nil
}

// ExportResult returns the wire form of a whole partitioning.
func ExportResult(r *Result) ([]artifact.Partition, error) {
	out := make([]artifact.Partition, 0, len(r.Parts))
	for _, p := range r.Parts {
		ap, err := Export(p)
		if err != nil {
			return nil, err
		}
		out = append(out, ap)
	}
	return out, nil
}

// ImportResult rebuilds a partitioning over g and re-checks the cover
// invariants (exact cover, convexity, connectivity) so a corrupted or
// mismatched artifact cannot produce an invalid partitioning. The phase
// trace is compile provenance and is not part of the wire form.
func ImportResult(g *sdf.Graph, parts []artifact.Partition) (*Result, error) {
	r := &Result{Graph: g}
	for _, ap := range parts {
		p, err := Import(g, ap)
		if err != nil {
			return nil, err
		}
		r.Parts = append(r.Parts, p)
	}
	if err := validate(g, r.Parts); err != nil {
		return nil, fmt.Errorf("partition: import: %w", err)
	}
	return r, nil
}
