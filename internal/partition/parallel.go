// Parallel candidate scoring for Algorithm 1.
//
// The partitioner stays deterministic by construction: workers only *score*
// candidate merges speculatively (filling the estimation engine's memo), and
// independent pipeline chains are windowed concurrently; every commit
// decision is then replayed by the same serial scan the plain Run performs,
// in the same candidate order. RunCtx(ctx, g, eng, 1) and Run(g, eng) are
// bit-identical; RunCtx with workers > 1 produces the same Result, faster.
package partition

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"streammap/internal/pee"
	"streammap/internal/sdf"
)

// RunCtx executes Algorithm 1 with a worker pool of the given width for
// candidate scoring. workers <= 0 selects GOMAXPROCS; workers == 1 is the
// exact serial path of Run. The context cancels the run between phases and
// between merge rounds.
func RunCtx(ctx context.Context, g *sdf.Graph, eng *pee.Engine, workers int) (*Result, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &partitioner{g: g, eng: eng, ctx: ctx, workers: workers,
		assigned: make([]int, g.NumNodes())}
	return p.run()
}

// cancelled reports a context cancellation, if any.
func (p *partitioner) cancelled() error {
	if p.ctx == nil {
		return nil
	}
	if err := p.ctx.Err(); err != nil {
		return fmt.Errorf("partition: cancelled: %w", err)
	}
	return nil
}

// scatter runs fn(i) for i in [0, n) on the worker pool. With one worker it
// degenerates to a plain loop.
func (p *partitioner) scatter(n int, fn func(i int)) {
	if n == 0 {
		return
	}
	w := p.workers
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	take := func() int { return int(next.Add(1) - 1) }
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if p.ctx != nil && p.ctx.Err() != nil {
					return
				}
				i := take()
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// prewarmSingletons speculatively scores the singleton set of every
// still-unassigned node (phase 1 and 2 consume these estimates).
func (p *partitioner) prewarmSingletons() {
	if p.workers <= 1 {
		return
	}
	var ids []sdf.NodeID
	for _, n := range p.g.Nodes {
		if p.assigned[n.ID] == -1 {
			ids = append(ids, n.ID)
		}
	}
	p.scatter(len(ids), func(i int) {
		p.eng.EstimateSet(sdf.SingletonSet(p.g.NumNodes(), ids[i]))
	})
}

// prewarmUnions speculatively scores candidate union sets, skipping sets the
// engine has already memoized and — mirroring tryMergeSets — sets that are
// not convex (the serial scan never estimates those either). Dedup is by
// 64-bit hash: a collision merely skips a speculative warm-up, which the
// serial commit scan then scores on demand.
func (p *partitioner) prewarmUnions(sets []sdf.NodeSet) {
	if p.workers <= 1 || len(sets) == 0 {
		return
	}
	seen := make(map[uint64]bool, len(sets))
	todo := sets[:0:0]
	for _, s := range sets {
		k := s.Hash()
		if seen[k] || p.eng.Cached(s) {
			continue
		}
		seen[k] = true
		todo = append(todo, s)
	}
	p.scatter(len(todo), func(i int) {
		if p.isConvex(todo[i]) {
			p.eng.EstimateSet(todo[i])
		}
	})
}

// windowsOfChain computes phase 1's merge windows for one pipeline chain
// without touching shared partitioner state; chains are node-disjoint, so
// RunCtx windows them concurrently and installs the results in chain order,
// which is exactly the serial install order.
func (p *partitioner) windowsOfChain(chain []sdf.NodeID) ([]*Partition, error) {
	var out []*Partition
	i := 0
	for i < len(chain) {
		if p.assigned[chain[i]] != -1 {
			i++
			continue
		}
		cur, err := p.makePartition(sdf.SingletonSet(p.g.NumNodes(), chain[i]))
		if err != nil {
			return nil, fmt.Errorf("partition: node %d (%s) does not fit on the device alone: %w",
				chain[i], p.g.Nodes[chain[i]].Filter.Name, err)
		}
		j := i + 1
		for j < len(chain) && p.assigned[chain[j]] == -1 {
			if err := p.cancelled(); err != nil {
				return nil, err
			}
			single, err := p.makePartition(sdf.SingletonSet(p.g.NumNodes(), chain[j]))
			if err != nil {
				return nil, err
			}
			union := p.borrowSet()
			union.CopyFrom(cur.Set)
			union.Add(chain[j])
			merged := p.tryMergeSets(union, cur.TWus()+single.TWus())
			p.returnSet(union)
			if merged == nil {
				break
			}
			cur = merged
			j++
		}
		out = append(out, cur)
		i = j
	}
	return out, nil
}

// phase1Parallel windows all chains concurrently, then installs each chain's
// windows serially in chain order (the serial phase 1 install order).
func (p *partitioner) phase1Parallel() error {
	chains := p.pipelineChains()
	wins := make([][]*Partition, len(chains))
	errs := make([]error, len(chains))
	p.scatter(len(chains), func(i int) {
		wins[i], errs[i] = p.windowsOfChain(chains[i])
	})
	if err := p.cancelled(); err != nil {
		return err
	}
	for i := range chains {
		if errs[i] != nil {
			return errs[i]
		}
		for _, part := range wins[i] {
			p.install(part)
		}
	}
	return nil
}
