package partition

import (
	"fmt"

	"streammap/internal/gpu"
	"streammap/internal/pee"
	"streammap/internal/sdf"
)

// PrevWork reproduces the previous work's partitioning heuristic as
// described in §3.1.1 and §4.0.4 of the paper: it "keeps merging filters
// until the SM requirement is violated". The heuristic knows nothing about
// execution time — its only criterion is the shared-memory size (plus the
// structural convexity requirement) — which is exactly why compute-bound
// applications end up with too few, poorly balanced partitions.
//
// The resulting partitions are estimated with the same engine so they can be
// mapped and simulated, but the estimates play no role in forming them.
func PrevWork(g *sdf.Graph, eng *pee.Engine, d gpu.Device) (*Result, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, fmt.Errorf("partition: prevwork requires an acyclic graph: %w", err)
	}
	assigned := make([]int, g.NumNodes())
	for i := range assigned {
		assigned[i] = -1
	}
	fits := func(set sdf.NodeSet) bool {
		// The previous work requires at least one execution to fit in SM.
		// The engine's memoized view path scores the candidate without
		// extracting it (same estimate as EstimateSubgraph∘Extract).
		est, err := eng.EstimateSet(set)
		if err != nil {
			return false
		}
		return est.SMBytes <= d.SharedMemPerSM
	}

	var sets []sdf.NodeSet
	for _, id := range order {
		if assigned[id] != -1 {
			continue
		}
		cur := sdf.SingletonSet(g.NumNodes(), id)
		if !fits(cur) {
			return nil, fmt.Errorf("partition: prevwork: node %d (%s) alone violates SM", id, g.Nodes[id].Filter.Name)
		}
		assigned[id] = len(sets)
		// Greedily absorb unassigned neighbours in topological order while
		// SM and convexity allow.
		for {
			grew := false
			for _, cand := range order {
				if assigned[cand] != -1 || !adjacentToSet(g, cur, cand) {
					continue
				}
				next := cur.Clone()
				next.Add(cand)
				if !g.IsConvex(next) || !fits(next) {
					continue
				}
				cur = next
				assigned[cand] = len(sets)
				grew = true
			}
			if !grew {
				break
			}
		}
		sets = append(sets, cur)
	}

	res := &Result{Graph: g}
	for _, set := range sets {
		est, err := eng.EstimateSet(set)
		if err != nil {
			return nil, fmt.Errorf("partition: prevwork produced unschedulable partition %v: %w", set, err)
		}
		sub, err := g.Extract(set)
		if err != nil {
			return nil, err
		}
		res.Parts = append(res.Parts, &Partition{Set: set, Sub: sub, Est: est})
	}
	if err := validate(g, res.Parts); err != nil {
		return nil, err
	}
	sortParts(g, res.Parts)
	for i := range res.CountAfterPhase {
		res.CountAfterPhase[i] = len(res.Parts)
	}
	return res, nil
}

func adjacentToSet(g *sdf.Graph, set sdf.NodeSet, id sdf.NodeID) bool {
	for _, v := range g.Succ(id) {
		if set.Has(v) {
			return true
		}
	}
	for _, v := range g.Pred(id) {
		if set.Has(v) {
			return true
		}
	}
	return false
}

// SinglePartition wraps the entire graph as one partition (the SPSG mapping
// of [10], the baseline of the SOSP metric). It fails if the whole graph
// cannot fit one execution in shared memory.
func SinglePartition(g *sdf.Graph, eng *pee.Engine) (*Result, error) {
	all := sdf.NewNodeSet(g.NumNodes())
	for _, n := range g.Nodes {
		all.Add(n.ID)
	}
	est, err := eng.EstimateSet(all)
	if err != nil {
		return nil, fmt.Errorf("partition: single-partition mapping infeasible: %w", err)
	}
	sub, err := g.Extract(all)
	if err != nil {
		return nil, err
	}
	res := &Result{Graph: g, Parts: []*Partition{{Set: all, Sub: sub, Est: est}}}
	for i := range res.CountAfterPhase {
		res.CountAfterPhase[i] = 1
	}
	return res, nil
}
