package partition

import (
	"context"
	"testing"

	"streammap/internal/apps"
	"streammap/internal/gpu"
	"streammap/internal/pee"
)

// TestRunCtxMatchesSerial asserts the chain-parallel, speculatively scored
// run commits exactly the serial result on real benchmark graphs.
func TestRunCtxMatchesSerial(t *testing.T) {
	for _, tc := range []struct {
		app string
		n   int
	}{{"DES", 8}, {"FMRadio", 8}, {"BitonicRec", 8}, {"FFT", 32}} {
		app, ok := apps.ByName(tc.app)
		if !ok {
			t.Fatalf("unknown app %s", tc.app)
		}
		g, err := apps.BuildGraph(app, tc.n)
		if err != nil {
			t.Fatal(err)
		}
		prof := pee.ProfileGraph(g, gpu.M2090())
		serial, err := Run(g, pee.NewEngine(g, prof))
		if err != nil {
			t.Fatalf("%s serial: %v", tc.app, err)
		}
		par, err := RunCtx(context.Background(), g, pee.NewEngine(g, prof), 8)
		if err != nil {
			t.Fatalf("%s parallel: %v", tc.app, err)
		}
		if len(par.Parts) != len(serial.Parts) {
			t.Fatalf("%s: parallel %d partitions, serial %d", tc.app, len(par.Parts), len(serial.Parts))
		}
		if par.CountAfterPhase != serial.CountAfterPhase {
			t.Errorf("%s: phase trace %v != %v", tc.app, par.CountAfterPhase, serial.CountAfterPhase)
		}
		for i := range par.Parts {
			if !par.Parts[i].Set.Equal(serial.Parts[i].Set) {
				t.Errorf("%s: partition %d differs: %v vs %v",
					tc.app, i, par.Parts[i].Set, serial.Parts[i].Set)
			}
		}
		if pt, st := par.TotalTWus(), serial.TotalTWus(); pt != st {
			t.Errorf("%s: total TW %v != %v", tc.app, pt, st)
		}
	}
}

// TestRunCtxCancelled verifies a cancelled context aborts the run.
func TestRunCtxCancelled(t *testing.T) {
	app, _ := apps.ByName("DES")
	g, err := apps.BuildGraph(app, 8)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	eng := pee.NewEngine(g, pee.ProfileGraph(g, gpu.M2090()))
	if _, err := RunCtx(ctx, g, eng, 4); err == nil {
		t.Error("cancelled run succeeded")
	}
}
