// Uncoarsening refinement for the multilevel partitioner: at each finer
// level, sweep the units and try moving boundary units into adjacent
// partitions when the TW sum improves — the bounded local step that lets
// quality converge toward the exact result as granularity is restored.
package partition

import (
	"fmt"

	"streammap/internal/sdf"
)

// refine re-expresses the live partitions in level's units and runs up to
// RefinePasses boundary sweeps under the per-level evaluation budget.
func (m *mlState) refine(level int) error {
	lvl := m.c.Levels[level]
	U := lvl.NumUnits
	q, err := buildQuotient(m.g, lvl.UnitOf, U)
	if err != nil {
		return err
	}
	m.visit = sdf.NewNodeSet(U)
	if cap(m.unitPart) < U {
		m.unitPart = make([]int32, U)
	}
	m.unitPart = m.unitPart[:U]

	// Partitions are unions of coarser units, which are unions of this
	// level's units, so membership projects down exactly.
	for _, p := range m.parts {
		if p.dead {
			continue
		}
		p.units = sdf.NewNodeSet(U)
		p.unitCnt = 0
		p.minPos, p.maxPos = int32(U), -1
	}
	for n, u := range lvl.UnitOf {
		idx := m.owner[n]
		p := m.parts[idx]
		if p.units.Has(sdf.NodeID(u)) {
			continue
		}
		p.units.Add(sdf.NodeID(u))
		p.unitCnt++
		m.unitPart[u] = idx
		p.minPos = min32(p.minPos, q.topoPos[u])
		p.maxPos = max32(p.maxPos, q.topoPos[u])
	}

	budget := m.opts.RefineBudget
	for pass := 0; pass < m.opts.RefinePasses && budget > 0; pass++ {
		moves := 0
		for u := int32(0); u < int32(U) && budget > 0; u++ {
			if err := m.cancelled(); err != nil {
				return err
			}
			P := m.unitPart[u]
			if m.parts[P].unitCnt < 2 {
				continue // moving the last unit would empty the partition
			}
			for _, Q := range m.moveTargets(q, u, P) {
				if budget <= 0 {
					break
				}
				budget--
				m.stats.MoveEvals++
				if m.tryMove(q, lvl, u, P, Q) {
					moves++
					m.stats.Moves++
					break
				}
			}
		}
		if moves == 0 {
			break
		}
	}
	return nil
}

// moveTargets returns the distinct live partitions adjacent to unit u other
// than its own, ascending by index.
func (m *mlState) moveTargets(q *quotient, u, P int32) []int32 {
	out := m.idxScratch[:0]
	add := func(v int32) {
		idx := m.unitPart[v]
		if idx == P || m.parts[idx].dead {
			return
		}
		for _, s := range out {
			if s == idx {
				return
			}
		}
		out = append(out, idx)
	}
	for _, v := range q.succs(u) {
		add(v)
	}
	for _, v := range q.preds(u) {
		add(v)
	}
	for i := 1; i < len(out); i++ { // insertion sort; lists are tiny
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	m.idxScratch = out
	return out
}

// tryMove evaluates moving unit u from partition P to adjacent partition Q
// and commits it when structurally sound and TW-profitable.
func (m *mlState) tryMove(q *quotient, lvl *CoarseLevel, u, P, Q int32) bool {
	p, qq := m.parts[P], m.parts[Q]
	if !m.removeOK(q, p, u) || !m.addConvex(q, qq, u) {
		return false
	}
	umem := lvl.Members(int(u))
	pMem := subtractSorted(p.members, umem)
	qMem := mergeSorted(qq.members, umem)
	estP, err := m.estimateMembers(pMem)
	if err != nil {
		return false
	}
	estQ, err := m.estimateMembers(qMem)
	if err != nil {
		return false
	}
	var scP int64
	p.units.ForEach(func(x sdf.NodeID) {
		if int32(x) != u {
			scP = gcd64(scP, lvl.scale[x])
		}
	})
	scQ := gcd64(qq.scale, lvl.scale[u])
	twP := estP.TUS * float64(scP)
	twQ := estQ.TUS * float64(scQ)
	if twP+twQ >= p.tw+qq.tw {
		return false
	}

	p.units.Remove(sdf.NodeID(u))
	p.unitCnt--
	p.members, p.est, p.scale, p.tw = pMem, estP, scP, twP
	p.minPos, p.maxPos = int32(q.n), -1
	p.units.ForEach(func(x sdf.NodeID) {
		p.minPos = min32(p.minPos, q.topoPos[x])
		p.maxPos = max32(p.maxPos, q.topoPos[x])
	})
	qq.units.Add(sdf.NodeID(u))
	qq.unitCnt++
	qq.members, qq.est, qq.scale, qq.tw = qMem, estQ, scQ, twQ
	qq.minPos = min32(qq.minPos, q.topoPos[u])
	qq.maxPos = max32(qq.maxPos, q.topoPos[u])
	m.unitPart[u] = Q
	for _, n := range umem {
		m.owner[n] = Q
	}
	return true
}

// removeOK reports whether P stays connected and convex after losing unit u.
// Convexity: P was convex, so a new violation must route through u — it
// exists iff u both reaches P\{u} forward and is reached from P\{u}
// backward, through units outside P (a direct edge to/from u counts: u
// itself is the offending intermediate).
func (m *mlState) removeOK(q *quotient, p *mlPart, u int32) bool {
	// Weak connectivity of P \ {u}.
	m.visit.Reset()
	queue := m.queue[:0]
	var start int32 = -1
	p.units.ForEach(func(x sdf.NodeID) {
		if start == -1 && int32(x) != u {
			start = int32(x)
		}
	})
	if start == -1 {
		return false
	}
	m.visit.Add(sdf.NodeID(start))
	queue = append(queue, start)
	count := 1
	for len(queue) > 0 {
		x := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		step := func(v int32) {
			if v == u || !p.units.Has(sdf.NodeID(v)) || m.visit.Has(sdf.NodeID(v)) {
				return
			}
			m.visit.Add(sdf.NodeID(v))
			count++
			queue = append(queue, v)
		}
		for _, v := range q.succs(x) {
			step(v)
		}
		for _, v := range q.preds(x) {
			step(v)
		}
	}
	m.queue = queue[:0]
	if count != p.unitCnt-1 {
		return false
	}

	inRest := func(v int32) bool { return v != u && p.units.Has(sdf.NodeID(v)) }

	// Forward: does u reach P\{u} through external units?
	m.visit.Reset()
	queue = m.queue[:0]
	fwd := false
	for _, v := range q.succs(u) {
		if inRest(v) {
			fwd = true
			break
		}
		if !p.units.Has(sdf.NodeID(v)) && q.topoPos[v] < p.maxPos {
			m.visit.Add(sdf.NodeID(v))
			queue = append(queue, v)
		}
	}
	for len(queue) > 0 && !fwd {
		x := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, v := range q.succs(x) {
			if inRest(v) {
				fwd = true
				break
			}
			if !p.units.Has(sdf.NodeID(v)) && q.topoPos[v] < p.maxPos && !m.visit.Has(sdf.NodeID(v)) {
				m.visit.Add(sdf.NodeID(v))
				queue = append(queue, v)
			}
		}
	}
	m.queue = queue[:0]
	if !fwd {
		return true
	}

	// Backward: is u reached from P\{u} through external units?
	m.visit.Reset()
	queue = m.queue[:0]
	bwd := false
	for _, v := range q.preds(u) {
		if inRest(v) {
			bwd = true
			break
		}
		if !p.units.Has(sdf.NodeID(v)) && q.topoPos[v] > p.minPos {
			m.visit.Add(sdf.NodeID(v))
			queue = append(queue, v)
		}
	}
	for len(queue) > 0 && !bwd {
		x := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, v := range q.preds(x) {
			if inRest(v) {
				bwd = true
				break
			}
			if !p.units.Has(sdf.NodeID(v)) && q.topoPos[v] > p.minPos && !m.visit.Has(sdf.NodeID(v)) {
				m.visit.Add(sdf.NodeID(v))
				queue = append(queue, v)
			}
		}
	}
	m.queue = queue[:0]
	return !bwd
}

// addConvex reports whether Q ∪ {u} is convex: no path from u to Q or from
// Q to u through units outside both (direct adjacency is fine).
func (m *mlState) addConvex(q *quotient, qq *mlPart, u int32) bool {
	external := func(v int32) bool { return v != u && !qq.units.Has(sdf.NodeID(v)) }

	// u → … → Q through externals.
	if q.topoPos[u] < qq.maxPos {
		m.visit.Reset()
		queue := m.queue[:0]
		found := false
		for _, v := range q.succs(u) {
			if external(v) && q.topoPos[v] < qq.maxPos {
				m.visit.Add(sdf.NodeID(v))
				queue = append(queue, v)
			}
		}
		for len(queue) > 0 && !found {
			x := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, v := range q.succs(x) {
				if qq.units.Has(sdf.NodeID(v)) {
					found = true
					break
				}
				if external(v) && q.topoPos[v] < qq.maxPos && !m.visit.Has(sdf.NodeID(v)) {
					m.visit.Add(sdf.NodeID(v))
					queue = append(queue, v)
				}
			}
		}
		m.queue = queue[:0]
		if found {
			return false
		}
	}

	// Q → … → u through externals.
	if qq.minPos < q.topoPos[u] {
		m.visit.Reset()
		queue := m.queue[:0]
		found := false
		qq.units.ForEach(func(x sdf.NodeID) {
			for _, v := range q.succs(int32(x)) {
				if external(v) && q.topoPos[v] < q.topoPos[u] && !m.visit.Has(sdf.NodeID(v)) {
					m.visit.Add(sdf.NodeID(v))
					queue = append(queue, v)
				}
			}
		})
		for len(queue) > 0 && !found {
			x := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, v := range q.succs(x) {
				if v == u {
					found = true
					break
				}
				if external(v) && q.topoPos[v] < q.topoPos[u] && !m.visit.Has(sdf.NodeID(v)) {
					m.visit.Add(sdf.NodeID(v))
					queue = append(queue, v)
				}
			}
		}
		m.queue = queue[:0]
		if found {
			return false
		}
	}
	return true
}

// materialize turns the surviving mlParts into the exact path's Result form:
// graph-capacity bitsets, extracted subgraphs, topological partition order.
func (m *mlState) materialize() (*Result, error) {
	res := &Result{Graph: m.g, ML: &m.stats}
	var parts []*Partition
	for _, p := range m.parts {
		if p.dead {
			continue
		}
		set := sdf.NewNodeSet(m.g.NumNodes())
		for _, n := range p.members {
			set.Add(n)
		}
		sub, err := m.g.Extract(set)
		if err != nil {
			return nil, err
		}
		parts = append(parts, &Partition{Set: set, Sub: sub, Est: p.est, scale: p.scale})
	}
	if err := mlValidate(m.g, parts); err != nil {
		return nil, err
	}
	sortParts(m.g, parts)
	res.Parts = parts
	return res, nil
}

// mlValidate runs the exact path's full validation up to mlFullValidateCap
// nodes; above it only the exact-cover check (convexity and connectivity
// hold by construction and were re-checked per merge and move at quotient
// granularity).
func mlValidate(g *sdf.Graph, parts []*Partition) error {
	if g.NumNodes() <= mlFullValidateCap {
		return validate(g, parts)
	}
	covered := sdf.NewNodeSet(g.NumNodes())
	total := 0
	for _, p := range parts {
		for _, n := range p.Sub.NodeOf {
			if covered.Has(n) {
				return fmt.Errorf("partition: node %d in two partitions", n)
			}
			covered.Add(n)
			total++
		}
	}
	if total != g.NumNodes() {
		return fmt.Errorf("partition: %d of %d nodes covered", total, g.NumNodes())
	}
	return nil
}
