// Package partition implements the paper's four-phase partitioning heuristic
// (Algorithm 1) and the previous work's SM-only partitioner used as a
// baseline.
//
// A partition is a convex, connected set of stream-graph nodes that will
// become one GPU kernel. Try-Merge accepts a merge only when (i) the two
// sides are connected, (ii) the union is convex, and (iii) the performance
// estimation engine expects the merged kernel to run faster than the two
// kernels separately — which implicitly enforces the shared-memory size
// constraint, since an unschedulable merge has no estimate at all.
//
// Because partitions may execute at different steady-state granularities
// (subgraph repetition vectors are gcd-normalized), all comparisons use the
// workload per *parent-graph* iteration: TW(p) = T(p) · Scale(p). For
// equal-granularity partitions this is exactly the paper's T comparison.
package partition

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"streammap/internal/pee"
	"streammap/internal/sdf"
)

// Partition is one selected kernel-to-be. During partitioning Sub stays nil
// — the workload comparison needs only the estimate and the granularity
// scale, so candidates are scored without materializing subgraphs — and the
// partitioner extracts every surviving partition once at the end. External
// constructors (artifact import) populate Sub directly.
type Partition struct {
	Set sdf.NodeSet
	Sub *sdf.Subgraph
	Est *pee.Estimate

	scale    int64       // Extract's Scale, known without extracting
	boundary sdf.NodeSet // nodes adjacent to Set, outside it (partitioner-internal)
}

// TWus is the partition's estimated execution time per parent-graph
// steady-state iteration, in microseconds.
func (p *Partition) TWus() float64 {
	if p.Sub != nil {
		return p.Est.TUS * float64(p.Sub.Scale)
	}
	return p.Est.TUS * float64(p.scale)
}

// ComputeBound reports the compute/IO classification driving phase 3.
func (p *Partition) ComputeBound() bool { return p.Est.ComputeBound() }

// Result is the partitioner's output.
type Result struct {
	Graph *sdf.Graph
	Parts []*Partition

	// Phase trace for reporting: partition counts after each phase. The
	// multilevel path reports [seeds, after-merge, after-all-nodes,
	// after-refine, final] in the same slots.
	CountAfterPhase [5]int

	// ML is non-nil when the multilevel path produced this result.
	ML *MLStats
}

// TotalTWus sums the per-iteration workload of all partitions (the quantity
// Algorithm 1 greedily minimizes).
func (r *Result) TotalTWus() float64 {
	var t float64
	for _, p := range r.Parts {
		t += p.TWus()
	}
	return t
}

type partitioner struct {
	g   *sdf.Graph
	eng *pee.Engine

	// Concurrency knobs (see parallel.go). ctx == nil, workers <= 1 is the
	// plain serial path.
	ctx     context.Context
	workers int

	parts    []*Partition // live partitions (nil holes compacted lazily)
	assigned []int        // node -> index into parts, -1 if none

	// Scratch pools: candidate unions are built in borrowed NodeSets and
	// convexity checks reuse traversal buffers, so the Try-Merge scan
	// allocates only for accepted merges. sync.Pools because the speculative
	// scorers (parallel.go) run on worker goroutines.
	setPool    sync.Pool // sdf.NodeSet of capacity NumNodes
	convexPool sync.Pool // *sdf.ConvexChecker
	idScratch  []sdf.NodeID
}

// borrowSet returns an empty scratch set of graph capacity.
func (p *partitioner) borrowSet() sdf.NodeSet {
	if v := p.setPool.Get(); v != nil {
		s := v.(sdf.NodeSet)
		s.Reset()
		return s
	}
	return sdf.NewNodeSet(p.g.NumNodes())
}

func (p *partitioner) returnSet(s sdf.NodeSet) { p.setPool.Put(s) }

// isConvex runs the convexity check with pooled traversal buffers.
func (p *partitioner) isConvex(set sdf.NodeSet) bool {
	var c *sdf.ConvexChecker
	if v := p.convexPool.Get(); v != nil {
		c = v.(*sdf.ConvexChecker)
	} else {
		c = p.g.NewConvexChecker()
	}
	ok := c.IsConvex(set)
	p.convexPool.Put(c)
	return ok
}

// Run executes Algorithm 1 over the profiled graph serially.
func Run(g *sdf.Graph, eng *pee.Engine) (*Result, error) {
	p := &partitioner{g: g, eng: eng, workers: 1, assigned: make([]int, g.NumNodes())}
	return p.run()
}

// run drives the five phases, checking for cancellation between them.
func (p *partitioner) run() (*Result, error) {
	for i := range p.assigned {
		p.assigned[i] = -1
	}
	res := &Result{Graph: p.g}

	phases := []struct {
		run func() error
	}{
		{p.phase0SCC},
		{p.phase1},
		{p.phase2Remaining},
		{p.phase3BoundMerging},
		{p.phase4Simultaneous},
	}
	for i, ph := range phases {
		if err := p.cancelled(); err != nil {
			return nil, err
		}
		if err := ph.run(); err != nil {
			return nil, err
		}
		res.CountAfterPhase[i] = len(p.compact())
	}
	res.Parts = p.compact()

	// Candidates were scored without materializing subgraphs; extract the
	// survivors once, now that the selection is final.
	for _, pt := range res.Parts {
		if pt.Sub != nil {
			continue
		}
		sub, err := p.g.Extract(pt.Set)
		if err != nil {
			return nil, err
		}
		pt.Sub = sub
	}

	if err := validate(p.g, res.Parts); err != nil {
		return nil, err
	}
	sortParts(p.g, res.Parts)
	return res, nil
}

// phase1 dispatches between the serial and chain-parallel phase 1; both
// produce identical partitions in identical order. Singleton estimates are
// prewarmed first so every window grows against a hot memo.
func (p *partitioner) phase1() error {
	p.prewarmSingletons()
	if p.workers > 1 {
		return p.phase1Parallel()
	}
	return p.phase1Pipelines()
}

// makePartition estimates a node set and wraps it (no subgraph extraction;
// see Partition); infeasible sets return an error. The set is referenced,
// not copied — callers passing scratch sets must pass a durable clone.
func (p *partitioner) makePartition(set sdf.NodeSet) (*Partition, error) {
	est, err := p.eng.EstimateSet(set)
	if err != nil {
		return nil, err
	}
	return &Partition{Set: set, Est: est, scale: p.eng.ScaleOf(set)}, nil
}

// tryMergeSets evaluates the merge criterion on a candidate union given the
// combined TW of its constituents. It returns the merged partition when the
// merge is profitable, nil otherwise. union is borrowed scratch: the
// returned partition owns an independent clone, so callers recycle union
// either way.
func (p *partitioner) tryMergeSets(union sdf.NodeSet, combinedTW float64) *Partition {
	if !p.isConvex(union) {
		return nil
	}
	est, err := p.eng.EstimateSet(union)
	if err != nil {
		return nil // SM violation or unschedulable: merge rejected
	}
	scale := p.eng.ScaleOf(union)
	if est.TUS*float64(scale) >= combinedTW {
		return nil
	}
	return &Partition{Set: union.Clone(), Est: est, scale: scale}
}

// connected reports whether an edge links the two partitions: some node of
// b lies on a's incrementally maintained boundary.
func (p *partitioner) connected(a, b *Partition) bool {
	return a.boundary.Intersects(b.Set)
}

// computeBoundary fills pt.boundary: every node adjacent (either direction)
// to a member but outside the set.
func (p *partitioner) computeBoundary(pt *Partition) {
	if pt.boundary.Cap() == 0 {
		pt.boundary = sdf.NewNodeSet(p.g.NumNodes())
	} else {
		pt.boundary.Reset()
	}
	pt.Set.ForEach(func(m sdf.NodeID) {
		for _, v := range p.g.Succ(m) {
			if !pt.Set.Has(v) {
				pt.boundary.Add(v)
			}
		}
		for _, v := range p.g.Pred(m) {
			if !pt.Set.Has(v) {
				pt.boundary.Add(v)
			}
		}
	})
}

// install replaces the partitions at the given indices with the merged one,
// deriving the new partition's boundary bitset.
func (p *partitioner) install(merged *Partition, victims ...int) int {
	for _, v := range victims {
		p.parts[v] = nil
	}
	p.computeBoundary(merged)
	p.parts = append(p.parts, merged)
	idx := len(p.parts) - 1
	merged.Set.ForEach(func(n sdf.NodeID) { p.assigned[n] = idx })
	return idx
}

// addSingleton creates a partition for one unassigned node.
func (p *partitioner) addSingleton(id sdf.NodeID) (int, error) {
	part, err := p.makePartition(sdf.SingletonSet(p.g.NumNodes(), id))
	if err != nil {
		return -1, fmt.Errorf("partition: node %d (%s) does not fit on the device alone: %w",
			id, p.g.Nodes[id].Filter.Name, err)
	}
	p.computeBoundary(part)
	p.parts = append(p.parts, part)
	idx := len(p.parts) - 1
	p.assigned[id] = idx
	return idx, nil
}

// compact returns the live partitions.
func (p *partitioner) compact() []*Partition {
	var out []*Partition
	for _, pt := range p.parts {
		if pt != nil {
			out = append(out, pt)
		}
	}
	return out
}

// phase0SCC collapses every non-trivial strongly connected component
// (feedback loop) into an atomic partition; the quotient of convex
// partitions must be acyclic for pipelined execution.
func (p *partitioner) phase0SCC() error {
	for _, scc := range stronglyConnected(p.g) {
		if len(scc) < 2 {
			continue
		}
		set := sdf.NewNodeSet(p.g.NumNodes())
		for _, id := range scc {
			set.Add(id)
		}
		part, err := p.makePartition(set)
		if err != nil {
			return fmt.Errorf("partition: feedback loop %v does not fit in shared memory: %w", set, err)
		}
		p.install(part)
	}
	return nil
}

// phase1Pipelines merges filters within each innermost pipeline: grow a
// window from the head; on the first failed merge, restart a fresh window at
// the failing node (Algorithm 1 lines 2-10).
func (p *partitioner) phase1Pipelines() error {
	for _, chain := range p.pipelineChains() {
		i := 0
		for i < len(chain) {
			if p.assigned[chain[i]] != -1 {
				i++
				continue
			}
			cur, err := p.addSingleton(chain[i])
			if err != nil {
				return err
			}
			j := i + 1
			for j < len(chain) && p.assigned[chain[j]] == -1 {
				if err := p.cancelled(); err != nil {
					return err
				}
				curP := p.parts[cur]
				single, err := p.makePartition(sdf.SingletonSet(p.g.NumNodes(), chain[j]))
				if err != nil {
					return err
				}
				union := p.borrowSet()
				union.CopyFrom(curP.Set)
				union.Add(chain[j])
				merged := p.tryMergeSets(union, curP.TWus()+single.TWus())
				p.returnSet(union)
				if merged == nil {
					break
				}
				cur = p.install(merged, cur)
				j++
			}
			i = j
		}
	}
	return nil
}

// pipelineChains groups nodes by innermost pipeline, ordered topologically
// along the chain.
func (p *partitioner) pipelineChains() [][]sdf.NodeID {
	order, err := p.g.TopoOrder()
	if err != nil {
		// Cyclic graphs: SCC phase already handled loops; order remaining by id.
		order = nil
		for _, n := range p.g.Nodes {
			order = append(order, n.ID)
		}
	}
	pos := make(map[sdf.NodeID]int, len(order))
	for i, id := range order {
		pos[id] = i
	}
	byPipe := map[int][]sdf.NodeID{}
	for _, n := range p.g.Nodes {
		if n.Pipe >= 0 {
			byPipe[n.Pipe] = append(byPipe[n.Pipe], n.ID)
		}
	}
	pipes := make([]int, 0, len(byPipe))
	for id := range byPipe {
		pipes = append(pipes, id)
	}
	sort.Ints(pipes)
	var out [][]sdf.NodeID
	for _, id := range pipes {
		chain := byPipe[id]
		sort.Slice(chain, func(a, b int) bool { return pos[chain[a]] < pos[chain[b]] })
		out = append(out, chain)
	}
	return out
}

// phase2Remaining merges the nodes outside pipelines (splitters, joiners,
// bare filters), Algorithm 1 lines 13-20.
func (p *partitioner) phase2Remaining() error {
	for _, n := range p.g.Nodes {
		if p.assigned[n.ID] != -1 {
			continue
		}
		cur, err := p.addSingleton(n.ID)
		if err != nil {
			return err
		}
		for {
			mergedAny := false
			curP := p.parts[cur]
			neighbors := p.unassignedNeighbors(curP)
			if p.workers > 1 {
				cands := make([]sdf.NodeSet, 0, len(neighbors))
				for _, k := range neighbors {
					u := curP.Set.Clone()
					u.Add(k)
					cands = append(cands, u)
				}
				p.prewarmUnions(cands)
			}
			for _, k := range neighbors {
				if err := p.cancelled(); err != nil {
					return err
				}
				single, err := p.makePartition(sdf.SingletonSet(p.g.NumNodes(), k))
				if err != nil {
					return err
				}
				union := p.borrowSet()
				union.CopyFrom(p.parts[cur].Set)
				union.Add(k)
				merged := p.tryMergeSets(union, p.parts[cur].TWus()+single.TWus())
				p.returnSet(union)
				if merged != nil {
					cur = p.install(merged, cur)
					mergedAny = true
				}
			}
			if !mergedAny {
				break
			}
		}
	}
	return nil
}

// unassignedNeighbors returns the still-unassigned nodes on the partition's
// boundary, ascending (boundary iteration order).
func (p *partitioner) unassignedNeighbors(pt *Partition) []sdf.NodeID {
	out := p.idScratch[:0]
	pt.boundary.ForEach(func(v sdf.NodeID) {
		if p.assigned[v] == -1 {
			out = append(out, v)
		}
	})
	p.idScratch = out
	return out
}

// phase3BoundMerging merges whole partitions in three rounds with the
// IO-bound-first priority of Algorithm 1 lines 23-31.
func (p *partitioner) phase3BoundMerging() error {
	type roundSpec struct{ candIO, partnerIO bool } // restrict to IO-bound lists?
	rounds := []roundSpec{
		{candIO: true, partnerIO: true},   // within L1
		{candIO: true, partnerIO: false},  // L1 against L1 ∪ L2
		{candIO: false, partnerIO: false}, // everything
	}
	for _, spec := range rounds {
		for {
			if err := p.cancelled(); err != nil {
				return err
			}
			mergedAny := false
			cands := p.liveIndices(func(pt *Partition) bool {
				return !spec.candIO || !pt.ComputeBound()
			})
			// Ascending execution time: smaller workloads merge first.
			sort.Slice(cands, func(a, b int) bool {
				return p.parts[cands[a]].TWus() < p.parts[cands[b]].TWus()
			})
			if p.workers > 1 {
				// Speculatively score every eligible pair this round; the
				// engine memo makes repeat rounds nearly free, and the serial
				// scan below then commits deterministically from warm cache.
				allPartners := p.liveIndices(func(pt *Partition) bool {
					return !spec.partnerIO || !pt.ComputeBound()
				})
				var unions []sdf.NodeSet
				for _, ci := range cands {
					for _, pi := range allPartners {
						if pi == ci {
							continue
						}
						a, b := p.parts[ci], p.parts[pi]
						if p.connected(a, b) {
							unions = append(unions, a.Set.Union(b.Set))
						}
					}
				}
				p.prewarmUnions(unions)
			}
			for _, ci := range cands {
				if p.parts[ci] == nil {
					continue
				}
				partners := p.liveIndices(func(pt *Partition) bool {
					return !spec.partnerIO || !pt.ComputeBound()
				})
				sort.Slice(partners, func(a, b int) bool {
					return p.parts[partners[a]].TWus() < p.parts[partners[b]].TWus()
				})
				for _, pi := range partners {
					if err := p.cancelled(); err != nil {
						return err
					}
					if pi == ci || p.parts[pi] == nil || p.parts[ci] == nil {
						continue
					}
					a, b := p.parts[ci], p.parts[pi]
					if !p.connected(a, b) {
						continue
					}
					union := p.borrowSet()
					union.CopyFrom(a.Set)
					union.UnionWith(b.Set)
					merged := p.tryMergeSets(union, a.TWus()+b.TWus())
					p.returnSet(union)
					if merged != nil {
						p.install(merged, ci, pi)
						mergedAny = true
						break
					}
				}
				if mergedAny {
					break // restart scan with updated lists, as in the paper
				}
			}
			if !mergedAny {
				break
			}
		}
	}
	return nil
}

func (p *partitioner) liveIndices(keep func(*Partition) bool) []int {
	var out []int
	for i, pt := range p.parts {
		if pt != nil && keep(pt) {
			out = append(out, i)
		}
	}
	return out
}

// phase4Simultaneous attempts (1) three-way merges — a partition plus two of
// its neighbours at once, which can pay off even when no pairwise merge does
// — and (2) the all-nodes single partition, guaranteeing the multi-partition
// result is never worse than single-partition mapping (Algorithm 1 lines
// 33-35).
func (p *partitioner) phase4Simultaneous() error {
	for {
		if err := p.cancelled(); err != nil {
			return err
		}
		mergedAny := false
		live := p.liveIndices(func(*Partition) bool { return true })
		if p.workers > 1 {
			var unions []sdf.NodeSet
			for _, ci := range live {
				if p.parts[ci] == nil {
					continue
				}
				neigh := p.neighborPartitions(ci)
				for x := 0; x < len(neigh); x++ {
					for y := x + 1; y < len(neigh); y++ {
						a, b, c := p.parts[ci], p.parts[neigh[x]], p.parts[neigh[y]]
						unions = append(unions, a.Set.Union(b.Set).Union(c.Set))
					}
				}
			}
			p.prewarmUnions(unions)
		}
		for _, ci := range live {
			if p.parts[ci] == nil {
				continue
			}
			neigh := p.neighborPartitions(ci)
			for x := 0; x < len(neigh) && !mergedAny; x++ {
				for y := x + 1; y < len(neigh); y++ {
					if err := p.cancelled(); err != nil {
						return err
					}
					qi, ri := neigh[x], neigh[y]
					if p.parts[qi] == nil || p.parts[ri] == nil || p.parts[ci] == nil {
						continue
					}
					a, b, c := p.parts[ci], p.parts[qi], p.parts[ri]
					union := p.borrowSet()
					union.CopyFrom(a.Set)
					union.UnionWith(b.Set)
					union.UnionWith(c.Set)
					merged := p.tryMergeSets(union, a.TWus()+b.TWus()+c.TWus())
					p.returnSet(union)
					if merged != nil {
						p.install(merged, ci, qi, ri)
						mergedAny = true
						break
					}
				}
			}
			if mergedAny {
				break
			}
		}
		if !mergedAny {
			break
		}
	}

	// (2) all nodes at once.
	live := p.compact()
	if len(live) > 1 {
		all := sdf.NewNodeSet(p.g.NumNodes())
		for _, n := range p.g.Nodes {
			all.Add(n.ID)
		}
		var combined float64
		for _, pt := range live {
			combined += pt.TWus()
		}
		if merged := p.tryMergeSets(all, combined); merged != nil {
			idxs := p.liveIndices(func(*Partition) bool { return true })
			p.install(merged, idxs...)
		}
	}
	return nil
}

// neighborPartitions returns indices of partitions adjacent to parts[ci],
// ascending, read off the partition's boundary bitset.
func (p *partitioner) neighborPartitions(ci int) []int {
	var out []int
	p.parts[ci].boundary.ForEach(func(v sdf.NodeID) {
		idx := p.assigned[v]
		if idx < 0 || idx == ci || p.parts[idx] == nil {
			return
		}
		for _, seen := range out {
			if seen == idx {
				return
			}
		}
		out = append(out, idx)
	})
	sort.Ints(out)
	return out
}

// validate checks the partitioning invariants: exact cover, convexity,
// connectivity.
func validate(g *sdf.Graph, parts []*Partition) error {
	covered := sdf.NewNodeSet(g.NumNodes())
	for _, p := range parts {
		for _, m := range p.Set.Members() {
			if covered.Has(m) {
				return fmt.Errorf("partition: node %d in two partitions", m)
			}
			covered.Add(m)
		}
		if !g.IsConvex(p.Set) {
			return fmt.Errorf("partition: %v not convex", p.Set)
		}
		if !g.IsConnected(p.Set) {
			return fmt.Errorf("partition: %v not connected", p.Set)
		}
	}
	if covered.Len() != g.NumNodes() {
		return fmt.Errorf("partition: %d of %d nodes covered", covered.Len(), g.NumNodes())
	}
	return nil
}

// sortParts orders partitions topologically by their earliest node in a
// parent topological order, for stable downstream numbering.
func sortParts(g *sdf.Graph, parts []*Partition) {
	order, err := g.TopoOrder()
	if err != nil {
		return
	}
	pos := make(map[sdf.NodeID]int, len(order))
	for i, id := range order {
		pos[id] = i
	}
	first := func(p *Partition) int {
		best := len(order)
		for _, m := range p.Set.Members() {
			if pos[m] < best {
				best = pos[m]
			}
		}
		return best
	}
	sort.SliceStable(parts, func(a, b int) bool { return first(parts[a]) < first(parts[b]) })
}

// stronglyConnected returns Tarjan's SCCs of the graph.
func stronglyConnected(g *sdf.Graph) [][]sdf.NodeID {
	n := g.NumNodes()
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []sdf.NodeID
	var out [][]sdf.NodeID
	next := 0

	var strong func(v sdf.NodeID)
	strong = func(v sdf.NodeID) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range g.Succ(v) {
			if index[w] == -1 {
				strong(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []sdf.NodeID
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			out = append(out, scc)
		}
	}
	for _, nd := range g.Nodes {
		if index[nd.ID] == -1 {
			strong(nd.ID)
		}
	}
	return out
}
