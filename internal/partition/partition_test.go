package partition

import (
	"testing"
	"testing/quick"

	"streammap/internal/gpu"
	"streammap/internal/pee"
	"streammap/internal/sdf"
)

func copyFilter(name string, n int) *sdf.Filter {
	return sdf.NewFilter(name, n, n, 0, int64(n), func(w *sdf.Work) {
		copy(w.Out[0], w.In[0][:n])
	})
}

func hotFilter(name string, n int, ops int64) *sdf.Filter {
	return sdf.NewFilter(name, n, n, 0, ops, func(w *sdf.Work) {
		copy(w.Out[0], w.In[0][:n])
	})
}

func engineFor(t *testing.T, g *sdf.Graph) *pee.Engine {
	t.Helper()
	return pee.NewEngine(g, pee.ProfileGraph(g, gpu.M2090()))
}

func runAlg1(t *testing.T, name string, s sdf.Stream) *Result {
	t.Helper()
	g, err := sdf.Flatten(name, s)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(g, engineFor(t, g))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestIOBoundPipelineMergesToOne(t *testing.T) {
	res := runAlg1(t, "io", sdf.Pipe("p",
		sdf.F(copyFilter("a", 8)), sdf.F(copyFilter("b", 8)),
		sdf.F(copyFilter("c", 8)), sdf.F(copyFilter("d", 8))))
	if len(res.Parts) != 1 {
		t.Errorf("IO-bound pipeline produced %d partitions, want 1", len(res.Parts))
	}
}

func TestComputeBoundSplitJoinStaysSplit(t *testing.T) {
	// Wide compute-heavy split-join branches: merging them stacks their
	// branch buffers (Figure 3.2), slashing W, so Algorithm 1 must refuse
	// the merges and keep the branches as separate kernels.
	res := runAlg1(t, "hot", sdf.SplitDupRR("sj", 512, []int{512, 512, 512, 512},
		sdf.F(hotFilter("h0", 512, 3000000)), sdf.F(hotFilter("h1", 512, 3000000)),
		sdf.F(hotFilter("h2", 512, 3000000)), sdf.F(hotFilter("h3", 512, 3000000))))
	if len(res.Parts) < 4 {
		t.Errorf("compute-bound split-join merged to %d partitions; expected it to stay split", len(res.Parts))
	}
	hot := 0
	for _, p := range res.Parts {
		if p.ComputeBound() {
			hot++
		}
	}
	if hot < 4 {
		t.Errorf("expected at least the 4 branch partitions to be compute-bound, got %d", hot)
	}
}

func TestComputeBoundPipelineStaysSplitToo(t *testing.T) {
	// Under static SM allocation, merging chained compute-heavy filters
	// grows the kernel footprint and cuts W, so even pipelines of hot
	// filters refuse to merge — this is what makes the paper's DES keep one
	// partition per round.
	res := runAlg1(t, "hotpipe", sdf.Pipe("p",
		sdf.F(hotFilter("a", 256, 3000000)), sdf.F(hotFilter("b", 256, 3000000)),
		sdf.F(hotFilter("c", 256, 3000000)), sdf.F(hotFilter("d", 256, 3000000))))
	if len(res.Parts) < 3 {
		t.Errorf("compute-bound pipeline merged to %d partitions; expected it to stay split", len(res.Parts))
	}
}

func TestSplitJoinStructure(t *testing.T) {
	res := runAlg1(t, "sj", sdf.SplitDupRR("sj", 8, []int{8, 8},
		sdf.Pipe("b0", sdf.F(copyFilter("a0", 8)), sdf.F(copyFilter("a1", 8))),
		sdf.Pipe("b1", sdf.F(copyFilter("b0", 8)), sdf.F(copyFilter("b1", 8)))))
	// All IO-bound: should collapse substantially (at most 2 partitions).
	if len(res.Parts) > 2 {
		t.Errorf("IO-bound split-join produced %d partitions", len(res.Parts))
	}
}

func TestPhaseCountsMonotonic(t *testing.T) {
	res := runAlg1(t, "mix", sdf.Pipe("p",
		sdf.F(copyFilter("pre", 16)),
		sdf.SplitDupRR("sj", 16, []int{16, 16},
			sdf.F(hotFilter("h0", 16, 40000)),
			sdf.F(hotFilter("h1", 16, 40000))),
		sdf.F(copyFilter("post", 32))))
	// After phase 2 all nodes are assigned; phases 3 and 4 only merge.
	if res.CountAfterPhase[3] > res.CountAfterPhase[2] {
		t.Errorf("phase 3 increased partitions: %v", res.CountAfterPhase)
	}
	if res.CountAfterPhase[4] > res.CountAfterPhase[3] {
		t.Errorf("phase 4 increased partitions: %v", res.CountAfterPhase)
	}
}

func TestFeedbackLoopAtomic(t *testing.T) {
	body := sdf.NewFilter("acc", 2, 2, 0, 3, func(w *sdf.Work) {
		s := w.In[0][0] + w.In[0][1]
		w.Out[0][0], w.Out[0][1] = s, s
	})
	loop := sdf.LoopOf("acc", sdf.RoundRobinJoiner([]int{1, 1}), sdf.F(body),
		sdf.RoundRobinSplitter([]int{1, 1}), nil, []sdf.Token{0})
	g, err := sdf.Flatten("loop", sdf.Pipe("p", sdf.F(copyFilter("pre", 1)), loop))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(g, engineFor(t, g))
	if err != nil {
		t.Fatal(err)
	}
	// The joiner/body/splitter cycle must share one partition.
	var loopPart *Partition
	for _, p := range res.Parts {
		for _, m := range p.Set.Members() {
			if g.Nodes[m].Filter.Name == "acc" {
				loopPart = p
			}
		}
	}
	if loopPart == nil {
		t.Fatal("loop body not in any partition")
	}
	cnt := 0
	for _, m := range loopPart.Set.Members() {
		k := g.Nodes[m].Filter.Kind
		if k == sdf.KindJoiner || k == sdf.KindSplitter || g.Nodes[m].Filter.Name == "acc" {
			cnt++
		}
	}
	if cnt < 3 {
		t.Errorf("feedback loop split across partitions: %v", loopPart.Set)
	}
}

func TestMultiPartitionNoWorseThanSingle(t *testing.T) {
	// Phase 4(2) guarantee.
	res := runAlg1(t, "guar", sdf.Pipe("p",
		sdf.F(copyFilter("a", 4)), sdf.F(hotFilter("b", 4, 100000)), sdf.F(copyFilter("c", 4))))
	g := res.Graph
	eng := engineFor(t, g)
	single, err := SinglePartition(g, eng)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalTWus() > single.Parts[0].TWus()*1.0001 {
		t.Errorf("multi-partition total %v worse than single %v", res.TotalTWus(), single.Parts[0].TWus())
	}
}

func TestPrevWorkMergesUntilSMViolated(t *testing.T) {
	// A chain of wide split-joins (DES-round-like): branch buffers stack, so
	// the whole graph cannot fit one SM. PrevWork must produce >1
	// partitions, each within SM.
	d := gpu.M2090()
	var stages []sdf.Stream
	for i := 0; i < 4; i++ {
		stages = append(stages, sdf.SplitDupRR("sj", 512, []int{512, 512},
			sdf.F(copyFilter("l"+string(rune('a'+i)), 512)),
			sdf.F(copyFilter("r"+string(rune('a'+i)), 512))))
	}
	g, err := sdf.Flatten("wide", sdf.Pipe("p", stages...))
	if err != nil {
		t.Fatal(err)
	}
	eng := engineFor(t, g)
	res, err := PrevWork(g, eng, d)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Parts) < 2 {
		t.Errorf("prevwork produced %d partitions; SM should force a split", len(res.Parts))
	}
	for _, p := range res.Parts {
		if p.Est.SMBytes > d.SharedMemPerSM {
			t.Errorf("prevwork partition exceeds SM: %d", p.Est.SMBytes)
		}
	}
}

func TestPrevWorkIgnoresComputeBoundedness(t *testing.T) {
	// Compute-heavy split-join that fits one SM: Algorithm 1 refuses the
	// merges (time would regress), the previous work happily merges
	// everything into one partition. This is the paper's "kernel count
	// ratio" effect.
	s := sdf.SplitDupRR("sj", 512, []int{512, 512},
		sdf.F(hotFilter("a", 512, 3000000)), sdf.F(hotFilter("b", 512, 3000000)))
	g, err := sdf.Flatten("hot", s)
	if err != nil {
		t.Fatal(err)
	}
	eng := engineFor(t, g)
	prev, err := PrevWork(g, eng, gpu.M2090())
	if err != nil {
		t.Fatal(err)
	}
	ours, err := Run(g, eng)
	if err != nil {
		t.Fatal(err)
	}
	if len(prev.Parts) != 1 {
		t.Errorf("prevwork partitions = %d, want 1", len(prev.Parts))
	}
	if len(ours.Parts) <= len(prev.Parts) {
		t.Errorf("kernel count ratio should exceed 1 for compute-bound apps: ours %d vs prev %d",
			len(ours.Parts), len(prev.Parts))
	}
}

func TestSinglePartitionInfeasibleForHugeGraph(t *testing.T) {
	// Stateful filters: persistent state lives the whole schedule, so four
	// together exceed 48KB even though each alone fits comfortably.
	stateful := func(name string) *sdf.Filter {
		f := copyFilter(name, 1000)
		f.Init = make([]sdf.Token, 2500)
		return f
	}
	g, err := sdf.Flatten("huge", sdf.Pipe("p",
		sdf.F(stateful("a")), sdf.F(stateful("b")),
		sdf.F(stateful("c")), sdf.F(stateful("d"))))
	if err != nil {
		t.Fatal(err)
	}
	eng := engineFor(t, g)
	if _, err := SinglePartition(g, eng); err == nil {
		t.Fatal("expected infeasibility for 48KB-exceeding single partition")
	}
	// Algorithm 1 must still find a valid multi-partition answer.
	res, err := Run(g, eng)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Parts) < 2 {
		t.Errorf("expected a split, got %d partitions", len(res.Parts))
	}
}

// Property: Algorithm 1 always returns a valid partitioning (cover, convex,
// connected) on random two-branch split-join graphs with mixed costs.
func TestRunInvariantsQuick(t *testing.T) {
	f := func(opsRaw [4]uint16, width uint8) bool {
		w := int(width)%16 + 1
		mk := func(i int, ops uint16) sdf.Stream {
			return sdf.F(hotFilter("f"+string(rune('a'+i)), w, int64(ops)%20000+1))
		}
		s := sdf.Pipe("p",
			mk(0, opsRaw[0]),
			sdf.SplitDupRR("sj", w, []int{w, w}, mk(1, opsRaw[1]), mk(2, opsRaw[2])),
			mk(3, opsRaw[3]))
		g, err := sdf.Flatten("q", s)
		if err != nil {
			return false
		}
		res, err := Run(g, pee.NewEngine(g, pee.ProfileGraph(g, gpu.M2090())))
		if err != nil {
			return false
		}
		covered := sdf.NewNodeSet(g.NumNodes())
		for _, p := range res.Parts {
			for _, m := range p.Set.Members() {
				if covered.Has(m) {
					return false
				}
				covered.Add(m)
			}
			if !g.IsConvex(p.Set) || !g.IsConnected(p.Set) {
				return false
			}
		}
		return covered.Len() == g.NumNodes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
