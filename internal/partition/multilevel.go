// Multilevel partitioning: coarsen (coarsen.go), run an IO-bound-first
// Try-Merge over the coarsest level's units, then uncoarsen level by level
// with bounded boundary refinement. Partitions are always unions of whole
// coarse units, so quotient-level convexity and connectivity imply the
// original-graph properties the exact partitioner enforces; profitability
// uses the same TW = T·Scale comparison, scored through the engine's
// uncached path (the memo would clone a graph-capacity bitset per candidate,
// which at 10^6 nodes is the memory hazard this path exists to avoid).
//
// Deviations from the exact Algorithm 1 flow, accepted for scalability and
// refereed by the differential harness (synth.CheckMultilevel):
//   - merge rounds sweep candidates in ascending-TW order without restarting
//     the whole scan after each accepted merge;
//   - refinement moves single units across partition boundaries instead of
//     re-running Try-Merge, under a per-level evaluation budget.
//
// Three-way merges (Algorithm 1's simultaneous phase) are kept: they are what
// collapses split-join fan-outs no pairwise merge can, and without them the
// result fragments into measurably more partitions than the exact path's.
package partition

import (
	"context"
	"fmt"
	"sort"

	"streammap/internal/pee"
	"streammap/internal/sdf"
)

// Multilevel defaults; see MLOptions.
const (
	DefaultRefinePasses  = 2
	DefaultRefineBudget  = 4096
	DefaultRefineUnitCap = 16384

	// mlFullValidateCap bounds the graph size up to which the final result
	// gets the exact path's full convexity/connectivity validation. Above
	// it only the exact-cover check runs: partitions are unions of coarse
	// units that are convex and connected by construction, and every merge
	// and move re-checked both properties at quotient granularity.
	mlFullValidateCap = 32768
)

// MLOptions configure the multilevel path. The zero value selects defaults
// sized for the 10^5–10^6 node target.
type MLOptions struct {
	Coarsen CoarsenOptions
	// RefinePasses is the number of boundary sweeps per uncoarsening level
	// (default 2).
	RefinePasses int
	// RefineBudget caps candidate-move evaluations per level (default 4096);
	// each evaluation costs at most two uncached estimates.
	RefineBudget int
	// RefineUnitCap skips refinement at levels with more units than this
	// (default 16384): on million-node graphs the finest levels are too
	// large to sweep, while at differential-corpus sizes every level —
	// including level 0 — is refined.
	RefineUnitCap int
}

func (o MLOptions) withDefaults(eng *pee.Engine) MLOptions {
	o.Coarsen = o.Coarsen.withDefaults()
	if o.Coarsen.MaxUnitBytes == 0 {
		o.Coarsen.MaxUnitBytes = eng.Prof.Device.SharedMemPerSM
	}
	if o.RefinePasses <= 0 {
		o.RefinePasses = DefaultRefinePasses
	}
	if o.RefineBudget <= 0 {
		o.RefineBudget = DefaultRefineBudget
	}
	if o.RefineUnitCap <= 0 {
		o.RefineUnitCap = DefaultRefineUnitCap
	}
	return o
}

// MLStats is the multilevel run's provenance, attached to Result.ML and
// surfaced through the driver's partition stage info.
type MLStats struct {
	Levels        int   // hierarchy depth including level 0
	CoarsestUnits int   // unit count of the coarsest level
	SeedLevel     int   // level the seed partitions came from (after fallback)
	SeedParts     int   // partitions at seeding
	MergeRounds   int   // merge sweeps across all three priority specs
	Merges        int   // accepted merges
	RefinedLevels int   // levels that ran boundary refinement
	MoveEvals     int   // candidate moves evaluated
	Moves         int   // accepted moves
	Estimates     int64 // uncached estimator calls made by this flow
}

func (s *MLStats) String() string {
	return fmt.Sprintf("levels=%d coarsest=%d seedLevel=%d seeds=%d merges=%d/%d rounds refined=%d levels moves=%d/%d evals estimates=%d",
		s.Levels, s.CoarsestUnits, s.SeedLevel, s.SeedParts, s.Merges, s.MergeRounds,
		s.RefinedLevels, s.Moves, s.MoveEvals, s.Estimates)
}

// mlPart is a partition during the multilevel flow: a set of units of the
// current working level plus the sorted original-node member list that
// feeds the estimator.
type mlPart struct {
	units   sdf.NodeSet // over the working level's units
	unitCnt int
	members []sdf.NodeID // sorted original node ids
	est     *pee.Estimate
	scale   int64
	tw      float64
	minPos  int32 // min/max quotient topo position over the part's units
	maxPos  int32
	dead    bool
}

type mlState struct {
	ctx   context.Context
	g     *sdf.Graph
	eng   *pee.Engine
	opts  MLOptions
	c     *Coarsening
	stats MLStats

	parts    []*mlPart
	owner    []int32 // node -> parts index
	unitPart []int32 // working-level unit -> parts index

	nodeScratch sdf.NodeSet // node-capacity scratch for estimator calls
	visit       sdf.NodeSet // unit-capacity scratch for convexity searches
	queue       []int32
	idxScratch  []int32
}

// Multilevel partitions g through the coarsen→merge→refine flow. It is
// deterministic for a given graph and options, cancellable between candidate
// evaluations, and returns a Result interchangeable with Run's (plus ML
// provenance).
func Multilevel(ctx context.Context, g *sdf.Graph, eng *pee.Engine, opts MLOptions) (*Result, error) {
	m := &mlState{ctx: ctx, g: g, eng: eng}
	m.opts = opts.withDefaults(eng)
	if err := m.cancelled(); err != nil {
		return nil, err
	}
	c, err := BuildCoarsening(g, m.opts.Coarsen)
	if err != nil {
		return nil, err
	}
	m.c = c
	m.stats.Levels = len(c.Levels)
	m.stats.CoarsestUnits = c.Coarsest().NumUnits
	m.nodeScratch = sdf.NewNodeSet(g.NumNodes())
	m.owner = make([]int32, g.NumNodes())

	// Seed at the coarsest level whose units are all individually
	// schedulable; an infeasible supernode sends us one level finer. At
	// level 0 the units are SCCs and singletons, whose infeasibility is the
	// same hard error the exact path reports.
	seedLevel := len(c.Levels) - 1
	for {
		if err := m.cancelled(); err != nil {
			return nil, err
		}
		ok, err := m.seed(c.Levels[seedLevel], seedLevel == 0)
		if err != nil {
			return nil, err
		}
		if ok {
			break
		}
		seedLevel--
	}
	m.stats.SeedLevel = seedLevel
	m.stats.SeedParts = len(m.parts)

	lvl := c.Levels[seedLevel]
	q, err := buildQuotient(g, lvl.UnitOf, lvl.NumUnits)
	if err != nil {
		return nil, err
	}
	m.visit = sdf.NewNodeSet(lvl.NumUnits)
	for i, p := range m.parts {
		p.minPos = q.topoPos[i]
		p.maxPos = q.topoPos[i]
	}
	if err := m.mergePhase(q); err != nil {
		return nil, err
	}
	afterMerge := m.liveCount()
	if err := m.threeWayPhase(q); err != nil {
		return nil, err
	}
	if err := m.allNodesPhase(lvl.NumUnits); err != nil {
		return nil, err
	}
	afterAll := m.liveCount()

	for level := seedLevel; level >= 0; level-- {
		if m.c.Levels[level].NumUnits > m.opts.RefineUnitCap {
			continue
		}
		if err := m.refine(level); err != nil {
			return nil, err
		}
		m.stats.RefinedLevels++
	}

	res, err := m.materialize()
	if err != nil {
		return nil, err
	}
	res.CountAfterPhase = [5]int{m.stats.SeedParts, afterMerge, afterAll, len(res.Parts), len(res.Parts)}
	return res, nil
}

func (m *mlState) cancelled() error {
	if m.ctx == nil {
		return nil
	}
	select {
	case <-m.ctx.Done():
		return m.ctx.Err()
	default:
		return nil
	}
}

// estimateMembers scores a sorted member list through the engine's uncached
// path, staging it in the shared node-capacity scratch set.
func (m *mlState) estimateMembers(members []sdf.NodeID) (*pee.Estimate, error) {
	m.stats.Estimates++
	for _, n := range members {
		m.nodeScratch.Add(n)
	}
	est, err := m.eng.EstimateMembers(m.nodeScratch, members)
	for _, n := range members {
		m.nodeScratch.Remove(n)
	}
	return est, err
}

// seed builds one singleton partition per unit of lvl. It returns ok=false
// when some unit is unschedulable and a finer level should be tried; at
// level 0 (hard=true) that is a compile error matching the exact path's.
func (m *mlState) seed(lvl *CoarseLevel, hard bool) (bool, error) {
	m.parts = m.parts[:0]
	U := lvl.NumUnits
	if cap(m.unitPart) < U {
		m.unitPart = make([]int32, U)
	}
	m.unitPart = m.unitPart[:U]
	for u := 0; u < U; u++ {
		if err := m.cancelled(); err != nil {
			return false, err
		}
		members := lvl.Members(u)
		est, err := m.estimateMembers(members)
		if err != nil {
			if !hard {
				return false, nil
			}
			if len(members) == 1 {
				id := members[0]
				return false, fmt.Errorf("partition: node %d (%s) does not fit on the device alone: %w",
					id, m.g.Nodes[id].Filter.Name, err)
			}
			set := sdf.NewNodeSet(m.g.NumNodes())
			for _, n := range members {
				set.Add(n)
			}
			return false, fmt.Errorf("partition: feedback loop %v does not fit in shared memory: %w", set, err)
		}
		sc := lvl.scale[u]
		p := &mlPart{
			units:   sdf.NewNodeSet(U),
			unitCnt: 1,
			members: members,
			est:     est,
			scale:   sc,
			tw:      est.TUS * float64(sc),
		}
		p.units.Add(sdf.NodeID(u))
		m.parts = append(m.parts, p)
		m.unitPart[u] = int32(len(m.parts) - 1)
		for _, n := range members {
			m.owner[n] = int32(u)
		}
	}
	return true, nil
}

func (m *mlState) liveCount() int {
	n := 0
	for _, p := range m.parts {
		if !p.dead {
			n++
		}
	}
	return n
}

// liveSorted returns indices of live partitions passing keep, ascending by
// (TW, index) — smaller workloads merge first, as in the exact phase 3.
func (m *mlState) liveSorted(keep func(*mlPart) bool) []int32 {
	out := m.idxScratch[:0]
	for i, p := range m.parts {
		if !p.dead && keep(p) {
			out = append(out, int32(i))
		}
	}
	sort.Slice(out, func(a, b int) bool {
		pa, pb := m.parts[out[a]], m.parts[out[b]]
		if pa.tw != pb.tw {
			return pa.tw < pb.tw
		}
		return out[a] < out[b]
	})
	m.idxScratch = out
	return out
}

// neighborParts returns the distinct live partitions adjacent to parts[ci]
// in the quotient, filtered by keep, ascending by (TW, index).
func (m *mlState) neighborParts(q *quotient, ci int32, keep func(*mlPart) bool) []int32 {
	var out []int32
	seen := func(idx int32) bool {
		for _, s := range out {
			if s == idx {
				return true
			}
		}
		return false
	}
	add := func(v int32) {
		idx := m.unitPart[v]
		if idx == ci {
			return
		}
		p := m.parts[idx]
		if p.dead || !keep(p) || seen(idx) {
			return
		}
		out = append(out, idx)
	}
	m.parts[ci].units.ForEach(func(u sdf.NodeID) {
		for _, v := range q.succs(int32(u)) {
			add(v)
		}
		for _, v := range q.preds(int32(u)) {
			add(v)
		}
	})
	sort.Slice(out, func(a, b int) bool {
		pa, pb := m.parts[out[a]], m.parts[out[b]]
		if pa.tw != pb.tw {
			return pa.tw < pb.tw
		}
		return out[a] < out[b]
	})
	return out
}

// mergePhase runs the three IO-bound-first rounds of Algorithm 1's phase 3
// over whole partitions at coarse granularity, sweeping until no merge is
// accepted.
func (m *mlState) mergePhase(q *quotient) error {
	specs := []struct{ candIO, partnerIO bool }{
		{true, true},   // within the IO-bound list
		{true, false},  // IO-bound against everything
		{false, false}, // everything
	}
	for _, spec := range specs {
		for {
			merged := 0
			order := append([]int32(nil), m.liveSorted(func(p *mlPart) bool {
				return !spec.candIO || !p.est.ComputeBound()
			})...)
			for _, ci := range order {
				a := m.parts[ci]
				if a.dead {
					continue
				}
				if err := m.cancelled(); err != nil {
					return err
				}
				for _, pi := range m.neighborParts(q, ci, func(p *mlPart) bool {
					return !spec.partnerIO || !p.est.ComputeBound()
				}) {
					b := m.parts[pi]
					if b.dead {
						continue
					}
					if m.extPath(q, a, b, nil) || m.extPath(q, b, a, nil) {
						continue
					}
					union := mergeSorted(a.members, b.members)
					est, err := m.estimateMembers(union)
					if err != nil {
						continue
					}
					sc := gcd64(a.scale, b.scale)
					tw := est.TUS * float64(sc)
					if tw >= a.tw+b.tw {
						continue
					}
					m.commitMerge(ci, pi, union, est, sc, tw)
					merged++
					break
				}
			}
			m.stats.MergeRounds++
			m.stats.Merges += merged
			if merged == 0 {
				break
			}
		}
	}
	return nil
}

// extPath reports whether a quotient path leaves `from`, traverses only
// units outside the candidate union, and enters `to`. All parts being
// convex, the union is convex iff no such path exists between any ordered
// pair of its constituents (a direct edge is plain adjacency, not a
// violation). excl, when non-nil, is a further union member: its units are
// inside the union, so a path entering them is not external — it is neither
// followed nor counted as a hit (its own pair checks cover it). Topological
// positions prune the search: along any path positions strictly increase,
// so nothing at or beyond to's max position can reach it.
func (m *mlState) extPath(q *quotient, from, to, excl *mlPart) bool {
	if from.minPos >= to.maxPos {
		return false
	}
	limit := to.maxPos
	inside := func(v int32) bool {
		return from.units.Has(sdf.NodeID(v)) || to.units.Has(sdf.NodeID(v)) ||
			(excl != nil && excl.units.Has(sdf.NodeID(v)))
	}
	m.visit.Reset()
	queue := m.queue[:0]
	push := func(v int32) {
		if q.topoPos[v] >= limit || m.visit.Has(sdf.NodeID(v)) {
			return
		}
		m.visit.Add(sdf.NodeID(v))
		queue = append(queue, v)
	}
	from.units.ForEach(func(u sdf.NodeID) {
		for _, v := range q.succs(int32(u)) {
			if !inside(v) {
				push(v)
			}
		}
	})
	found := false
	for len(queue) > 0 && !found {
		u := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, v := range q.succs(u) {
			if to.units.Has(sdf.NodeID(v)) {
				found = true
				break
			}
			if !inside(v) {
				push(v)
			}
		}
	}
	m.queue = queue[:0]
	return found
}

// tripleConvex reports whether a ∪ b ∪ c is convex: any violating path would
// route externally between two of the three (an external segment from a part
// back to itself is ruled out by that part's own convexity), so checking the
// six ordered pairs — each with the third part counted as interior — is
// exact.
func (m *mlState) tripleConvex(q *quotient, a, b, c *mlPart) bool {
	return !m.extPath(q, a, b, c) && !m.extPath(q, b, a, c) &&
		!m.extPath(q, a, c, b) && !m.extPath(q, c, a, b) &&
		!m.extPath(q, b, c, a) && !m.extPath(q, c, b, a)
}

// threeWayPhase mirrors Algorithm 1's simultaneous phase at coarse
// granularity: a partition plus two of its neighbours merge at once when the
// pairwise criterion fails but the three-way one holds — the move that
// collapses split-join fan-outs. Restarts the scan after each accepted
// merge, as the exact phase does.
func (m *mlState) threeWayPhase(q *quotient) error {
	for {
		mergedAny := false
		for ci := int32(0); ci < int32(len(m.parts)) && !mergedAny; ci++ {
			a := m.parts[ci]
			if a.dead {
				continue
			}
			if err := m.cancelled(); err != nil {
				return err
			}
			neigh := m.neighborParts(q, ci, func(*mlPart) bool { return true })
			sort.Slice(neigh, func(x, y int) bool { return neigh[x] < neigh[y] })
			for x := 0; x < len(neigh) && !mergedAny; x++ {
				for y := x + 1; y < len(neigh); y++ {
					b, c := m.parts[neigh[x]], m.parts[neigh[y]]
					if b.dead || c.dead {
						continue
					}
					if !m.tripleConvex(q, a, b, c) {
						continue
					}
					union := mergeSorted(mergeSorted(a.members, b.members), c.members)
					est, err := m.estimateMembers(union)
					if err != nil {
						continue
					}
					sc := gcd64(gcd64(a.scale, b.scale), c.scale)
					tw := est.TUS * float64(sc)
					if tw >= a.tw+b.tw+c.tw {
						continue
					}
					m.commitMerge(ci, neigh[x], union, est, sc, tw)
					np := m.parts[len(m.parts)-1]
					m.absorb(np, neigh[y])
					m.stats.Merges++
					mergedAny = true
					break
				}
			}
		}
		m.stats.MergeRounds++
		if !mergedAny {
			break
		}
	}
	return nil
}

// absorb folds partition pi into np (already committed as a merge of other
// parts), extending its units, members and positions.
func (m *mlState) absorb(np *mlPart, pi int32) {
	c := m.parts[pi]
	c.dead = true
	np.unitCnt += c.unitCnt
	np.minPos = min32(np.minPos, c.minPos)
	np.maxPos = max32(np.maxPos, c.maxPos)
	np.units.UnionWith(c.units)
	self := int32(len(m.parts) - 1)
	c.units.ForEach(func(u sdf.NodeID) { m.unitPart[u] = self })
	for _, n := range c.members {
		m.owner[n] = self
	}
}

func (m *mlState) commitMerge(ci, pi int32, union []sdf.NodeID, est *pee.Estimate, sc int64, tw float64) {
	a, b := m.parts[ci], m.parts[pi]
	a.dead, b.dead = true, true
	np := &mlPart{
		units:   a.units, // a is dead; reuse its bitset
		unitCnt: a.unitCnt + b.unitCnt,
		members: union,
		est:     est,
		scale:   sc,
		tw:      tw,
		minPos:  min32(a.minPos, b.minPos),
		maxPos:  max32(a.maxPos, b.maxPos),
	}
	np.units.UnionWith(b.units)
	m.parts = append(m.parts, np)
	idx := int32(len(m.parts) - 1)
	np.units.ForEach(func(u sdf.NodeID) { m.unitPart[u] = idx })
	for _, n := range union {
		m.owner[n] = idx
	}
}

// allNodesPhase attempts the single-partition compilation, the guarantee
// that multi-partition output is never worse than one kernel (Algorithm 1's
// last step).
func (m *mlState) allNodesPhase(numUnits int) error {
	if err := m.cancelled(); err != nil {
		return err
	}
	if m.liveCount() <= 1 {
		return nil
	}
	all := make([]sdf.NodeID, m.g.NumNodes())
	for i := range all {
		all[i] = sdf.NodeID(i)
	}
	est, err := m.estimateMembers(all)
	if err != nil {
		return nil // does not fit as one kernel; keep the multi-partition result
	}
	var sc int64
	var combined float64
	for _, p := range m.parts {
		if !p.dead {
			sc = gcd64(sc, p.scale)
			combined += p.tw
		}
	}
	tw := est.TUS * float64(sc)
	if tw >= combined {
		return nil
	}
	for _, p := range m.parts {
		p.dead = true
	}
	units := sdf.NewNodeSet(numUnits)
	for u := 0; u < numUnits; u++ {
		units.Add(sdf.NodeID(u))
	}
	np := &mlPart{units: units, unitCnt: numUnits, members: all, est: est, scale: sc, tw: tw,
		minPos: 0, maxPos: int32(numUnits) - 1}
	m.parts = append(m.parts, np)
	idx := int32(len(m.parts) - 1)
	for u := range m.unitPart {
		m.unitPart[u] = idx
	}
	for n := range m.owner {
		m.owner[n] = idx
	}
	return nil
}

func min32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}

func max32(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}

// mergeSorted merges two ascending NodeID slices into a fresh slice.
func mergeSorted(a, b []sdf.NodeID) []sdf.NodeID {
	out := make([]sdf.NodeID, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] < b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// subtractSorted returns a \ b for ascending slices (b ⊆ a in our usage).
func subtractSorted(a, b []sdf.NodeID) []sdf.NodeID {
	out := make([]sdf.NodeID, 0, len(a)-len(b))
	j := 0
	for _, x := range a {
		for j < len(b) && b[j] < x {
			j++
		}
		if j < len(b) && b[j] == x {
			continue
		}
		out = append(out, x)
	}
	return out
}
