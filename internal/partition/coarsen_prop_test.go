// Property tests for the multilevel coarsening hierarchy (external test
// package: the graphs come from the synth generator, which lives above
// partition in the import order).
package partition_test

import (
	"context"
	"testing"

	"streammap/internal/gpu"
	"streammap/internal/partition"
	"streammap/internal/pee"
	"streammap/internal/sdf"
	"streammap/internal/synth"
)

func synthGraph(t *testing.T, seed uint64, filters int) *sdf.Graph {
	t.Helper()
	g, err := synth.BuildGraph(synth.GraphParams{Seed: seed, Filters: filters, MaxOps: 256})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Steady(); err != nil {
		t.Fatal(err)
	}
	return g
}

func gcd64t(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// TestCoarseningPreservesInvariants checks, at every level of the hierarchy:
// exact cover (each node in exactly one unit, units consistent with the
// previous level through Parent), per-unit scale = gcd of member repetition
// counts, total work conservation, and IO-byte conservation — the bytes on
// intra-unit edges equal the sum of per-unit internal bytes, so internal +
// cross always re-aggregates to the graph's total edge bytes.
func TestCoarseningPreservesInvariants(t *testing.T) {
	for _, tc := range []struct {
		seed    uint64
		filters int
	}{
		{1, 200}, {2, 1500}, {3, 12000},
	} {
		g := synthGraph(t, tc.seed, tc.filters)
		c, err := partition.BuildCoarsening(g, partition.CoarsenOptions{})
		if err != nil {
			t.Fatalf("filters=%d: %v", tc.filters, err)
		}
		N := g.NumNodes()

		var totalWork, totalBytes int64
		for _, n := range g.Nodes {
			totalWork += g.Rep(n.ID) * n.Filter.Ops
		}
		for _, e := range g.Edges {
			totalBytes += g.EdgeBytes(e)
		}

		for li, lvl := range c.Levels {
			if len(lvl.UnitOf) != N {
				t.Fatalf("filters=%d level %d: UnitOf covers %d of %d nodes", tc.filters, li, len(lvl.UnitOf), N)
			}
			if li > 0 {
				prev := c.Levels[li-1]
				if len(lvl.Parent) != prev.NumUnits {
					t.Fatalf("filters=%d level %d: Parent maps %d of %d finer units", tc.filters, li, len(lvl.Parent), prev.NumUnits)
				}
				for n := 0; n < N; n++ {
					if lvl.UnitOf[n] != lvl.Parent[prev.UnitOf[n]] {
						t.Fatalf("filters=%d level %d: node %d unit %d != Parent[%d]=%d",
							tc.filters, li, n, lvl.UnitOf[n], prev.UnitOf[n], lvl.Parent[prev.UnitOf[n]])
					}
				}
			}

			seen := 0
			var work, internal int64
			for u := 0; u < lvl.NumUnits; u++ {
				mem := lvl.Members(u)
				if len(mem) == 0 {
					t.Fatalf("filters=%d level %d: unit %d empty", tc.filters, li, u)
				}
				if len(mem) != lvl.UnitNodeCount(u) {
					t.Fatalf("filters=%d level %d: unit %d has %d members, counts %d",
						tc.filters, li, u, len(mem), lvl.UnitNodeCount(u))
				}
				var sc int64
				for i, n := range mem {
					if i > 0 && mem[i-1] >= n {
						t.Fatalf("filters=%d level %d: unit %d members not ascending", tc.filters, li, u)
					}
					if lvl.UnitOf[n] != int32(u) {
						t.Fatalf("filters=%d level %d: member %d of unit %d maps to unit %d",
							tc.filters, li, n, u, lvl.UnitOf[n])
					}
					sc = gcd64t(sc, g.Rep(n))
					work += g.Rep(n) * g.Nodes[n].Filter.Ops
				}
				seen += len(mem)
				if got := lvl.UnitScale(u); got != sc {
					t.Fatalf("filters=%d level %d: unit %d scale %d, want gcd %d", tc.filters, li, u, got, sc)
				}
				internal += lvl.UnitInternalBytes(u)
			}
			if seen != N {
				t.Fatalf("filters=%d level %d: units cover %d of %d nodes", tc.filters, li, seen, N)
			}
			if work != totalWork {
				t.Fatalf("filters=%d level %d: total work %d, want %d", tc.filters, li, work, totalWork)
			}

			var intra, cross int64
			for _, e := range g.Edges {
				if lvl.UnitOf[e.Src] == lvl.UnitOf[e.Dst] {
					intra += g.EdgeBytes(e)
				} else {
					cross += g.EdgeBytes(e)
				}
			}
			if internal != intra {
				t.Fatalf("filters=%d level %d: unit internal bytes %d, intra-unit edges carry %d",
					tc.filters, li, internal, intra)
			}
			if internal+cross != totalBytes {
				t.Fatalf("filters=%d level %d: internal %d + cross %d != total %d",
					tc.filters, li, internal, cross, totalBytes)
			}
		}

		if got := c.Coarsest().NumUnits; len(c.Levels) > 1 && got >= c.Levels[0].NumUnits {
			t.Fatalf("filters=%d: coarsening did not shrink (%d -> %d units)",
				tc.filters, c.Levels[0].NumUnits, got)
		}
	}
}

// TestCoarseningUnitsConvexConnected spot-checks that every supernode is a
// convex, connected subgraph of the original graph — the structural property
// that lets quotient-level reasoning stand in for node-level reasoning.
func TestCoarseningUnitsConvexConnected(t *testing.T) {
	g := synthGraph(t, 7, 900)
	c, err := partition.BuildCoarsening(g, partition.CoarsenOptions{CoreSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	for li, lvl := range c.Levels {
		for u := 0; u < lvl.NumUnits; u++ {
			set := sdf.NewNodeSet(g.NumNodes())
			for _, n := range lvl.Members(u) {
				set.Add(n)
			}
			if !g.IsConnected(set) {
				t.Fatalf("level %d unit %d not connected", li, u)
			}
			if !g.IsConvex(set) {
				t.Fatalf("level %d unit %d not convex", li, u)
			}
		}
	}
}

// TestMultilevelRestoresNodeSet: uncoarsening must hand back every original
// node exactly once — the union of the result's partition sets is
// bit-for-bit the full node set.
func TestMultilevelRestoresNodeSet(t *testing.T) {
	g := synthGraph(t, 9, 3000)
	eng := pee.NewEngine(g, pee.ProfileGraph(g, gpu.M2090()))
	res, err := partition.Multilevel(context.Background(), g, eng, partition.MLOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.ML == nil {
		t.Fatal("multilevel result carries no MLStats")
	}
	full := sdf.NewNodeSet(g.NumNodes())
	for _, n := range g.Nodes {
		full.Add(n.ID)
	}
	union := sdf.NewNodeSet(g.NumNodes())
	total := 0
	for i, p := range res.Parts {
		if union.Intersects(p.Set) {
			t.Fatalf("partition %d overlaps an earlier one", i)
		}
		union.UnionWith(p.Set)
		total += p.Set.Len()
	}
	if !union.Equal(full) || total != g.NumNodes() {
		t.Fatalf("union of %d partitions covers %d of %d nodes and differs from the full set",
			len(res.Parts), total, g.NumNodes())
	}
}

// TestMultilevelCancelledContext: a cancelled context aborts both the exact
// concurrent path and the multilevel path before they commit to long merge
// scans (the regression for the in-loop cancellation checks).
func TestMultilevelCancelledContext(t *testing.T) {
	g := synthGraph(t, 5, 400)
	eng := pee.NewEngine(g, pee.ProfileGraph(g, gpu.M2090()))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := partition.Multilevel(ctx, g, eng, partition.MLOptions{}); err == nil {
		t.Error("Multilevel ran to completion under a cancelled context")
	}
	if _, err := partition.RunCtx(ctx, g, eng, 2); err == nil {
		t.Error("RunCtx ran to completion under a cancelled context")
	}
	if _, err := partition.RunCtx(ctx, g, eng, 1); err == nil {
		t.Error("serial RunCtx ran to completion under a cancelled context")
	}
}
