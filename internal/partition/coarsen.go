// Multilevel coarsening: contract the stream graph into a hierarchy of
// supernode levels so a million-filter graph can be partitioned on a core of
// a few thousand units. Contraction is purely structural — strongly
// connected components seed level 0 (they are atomic for pipelined execution
// anyway), then each round contracts rate-matched split-join diamonds and
// unique-successor/unique-predecessor chains, the two shapes synth-scale
// stream graphs are made of. Every supernode is convex and connected by
// construction, so partitions assembled from whole units inherit both
// properties at the original graph's granularity.
package partition

import (
	"fmt"
	"sort"

	"streammap/internal/sdf"
)

// Coarsening defaults; see CoarsenOptions.
const (
	DefaultCoreSize     = 2048
	DefaultMaxUnitNodes = 64
	DefaultMaxLevels    = 32
)

// CoarsenOptions bound the contraction.
type CoarsenOptions struct {
	// CoreSize stops coarsening once a level has at most this many units
	// (default 2048 — a size the coarse Try-Merge handles in seconds).
	CoreSize int
	// MaxUnitNodes caps how many original nodes one supernode may absorb
	// (default 64).
	MaxUnitNodes int
	// MaxUnitBytes caps a supernode's estimated per-iteration internal
	// buffer bytes, the proxy for its shared-memory footprint. 0 means
	// uncapped here; Multilevel defaults it to the device's shared memory so
	// seed units stay schedulable.
	MaxUnitBytes int64
	// MaxLevels is a safety cap on hierarchy depth (default 32).
	MaxLevels int
}

func (o CoarsenOptions) withDefaults() CoarsenOptions {
	if o.CoreSize <= 0 {
		o.CoreSize = DefaultCoreSize
	}
	if o.MaxUnitNodes <= 0 {
		o.MaxUnitNodes = DefaultMaxUnitNodes
	}
	if o.MaxLevels <= 0 {
		o.MaxLevels = DefaultMaxLevels
	}
	return o
}

// CoarseLevel is one granularity of the hierarchy: a partition of the
// original nodes into NumUnits supernodes, each convex and connected.
type CoarseLevel struct {
	NumUnits int
	// UnitOf maps each original node id to its unit at this level.
	UnitOf []int32
	// Parent maps the previous (finer) level's units to units at this level;
	// at level 0 the "previous level" is the nodes themselves, so Parent
	// aliases UnitOf.
	Parent []int32

	nodeCount []int32 // original nodes per unit
	scale     []int64 // gcd of member repetition counts per unit
	internal  []int64 // parent-iteration bytes on intra-unit edges

	memOff []int32
	mem    []sdf.NodeID
}

// UnitNodeCount returns the number of original nodes inside unit u.
func (l *CoarseLevel) UnitNodeCount(u int) int { return int(l.nodeCount[u]) }

// UnitScale returns the gcd of the repetition counts of u's members.
func (l *CoarseLevel) UnitScale(u int) int64 { return l.scale[u] }

// UnitInternalBytes returns the parent-iteration bytes carried by edges with
// both endpoints inside u.
func (l *CoarseLevel) UnitInternalBytes(u int) int64 { return l.internal[u] }

// Members returns unit u's original node ids, ascending. The member index is
// built on first use and shared by all units of the level; the returned
// slice aliases it and must not be written.
func (l *CoarseLevel) Members(u int) []sdf.NodeID {
	if l.mem == nil {
		l.buildMembers()
	}
	return l.mem[l.memOff[u]:l.memOff[u+1]]
}

func (l *CoarseLevel) buildMembers() {
	off := make([]int32, l.NumUnits+1)
	for _, u := range l.UnitOf {
		off[u+1]++
	}
	for i := 1; i <= l.NumUnits; i++ {
		off[i] += off[i-1]
	}
	mem := make([]sdf.NodeID, len(l.UnitOf))
	cur := append([]int32(nil), off[:l.NumUnits]...)
	for n, u := range l.UnitOf {
		mem[cur[u]] = sdf.NodeID(n)
		cur[u]++
	}
	l.memOff, l.mem = off, mem
}

// Coarsening is the full hierarchy, finest (level 0, SCC granularity) to
// coarsest.
type Coarsening struct {
	G      *sdf.Graph
	Opts   CoarsenOptions
	Levels []*CoarseLevel
}

// Coarsest returns the last (smallest) level.
func (c *Coarsening) Coarsest() *CoarseLevel { return c.Levels[len(c.Levels)-1] }

// BuildCoarsening contracts g level by level until the unit count reaches
// opts.CoreSize, no contraction applies, or opts.MaxLevels is hit. The graph
// must have a steady state.
func BuildCoarsening(g *sdf.Graph, opts CoarsenOptions) (*Coarsening, error) {
	opts = opts.withDefaults()
	c := &Coarsening{G: g, Opts: opts, Levels: []*CoarseLevel{sccLevel(g)}}
	for len(c.Levels) < opts.MaxLevels {
		cur := c.Coarsest()
		if cur.NumUnits <= opts.CoreSize {
			break
		}
		next, err := contract(g, cur, opts)
		if err != nil {
			return nil, err
		}
		if next == nil {
			break
		}
		c.Levels = append(c.Levels, next)
	}
	return c, nil
}

// sccLevel builds level 0: every strongly connected component is one unit,
// numbered ascending by smallest member node id for determinism.
func sccLevel(g *sdf.Graph) *CoarseLevel {
	n := g.NumNodes()
	sccOf := make([]int32, n)
	sccs := stronglyConnected(g)
	for si, scc := range sccs {
		for _, id := range scc {
			sccOf[id] = int32(si)
		}
	}
	sccUnit := make([]int32, len(sccs))
	for i := range sccUnit {
		sccUnit[i] = -1
	}
	unitOf := make([]int32, n)
	var next int32
	for id := 0; id < n; id++ {
		si := sccOf[id]
		if sccUnit[si] == -1 {
			sccUnit[si] = next
			next++
		}
		unitOf[id] = sccUnit[si]
	}
	l := &CoarseLevel{
		NumUnits:  int(next),
		UnitOf:    unitOf,
		Parent:    unitOf,
		nodeCount: make([]int32, next),
		scale:     make([]int64, next),
		internal:  make([]int64, next),
	}
	for id := 0; id < n; id++ {
		u := unitOf[id]
		l.nodeCount[u]++
		l.scale[u] = gcd64(l.scale[u], g.Rep(sdf.NodeID(id)))
	}
	for _, e := range g.Edges {
		if ua := unitOf[e.Src]; ua == unitOf[e.Dst] {
			l.internal[ua] += g.EdgeBytes(e)
		}
	}
	return l
}

// contract runs one diamond-then-chains matching round over the level's
// quotient graph and returns the next coarser level, or nil when nothing
// contracted.
func contract(g *sdf.Graph, cur *CoarseLevel, opts CoarsenOptions) (*CoarseLevel, error) {
	q, err := buildQuotient(g, cur.UnitOf, cur.NumUnits)
	if err != nil {
		return nil, err
	}
	U := cur.NumUnits
	leader := make([]int32, U) // smallest unit id of the group; -1 ungrouped
	for i := range leader {
		leader[i] = -1
	}
	groups := 0

	// fits applies the supernode caps: original-node count and the
	// shared-memory proxy (internal bytes per normalized unit iteration).
	fits := func(nodes, by, sc int64) bool {
		if nodes > int64(opts.MaxUnitNodes) {
			return false
		}
		if opts.MaxUnitBytes > 0 && sc > 0 && by/sc > opts.MaxUnitBytes {
			return false
		}
		return true
	}

	// Pass 1: rate-matched split-joins. A splitter s whose successors are all
	// single-purpose arms (unique pred s, unique common succ j, equal scale)
	// contracts with the arms and the joiner into one supernode.
	for s := int32(0); s < int32(U); s++ {
		if leader[s] != -1 {
			continue
		}
		arms := q.succs(s)
		if len(arms) < 2 {
			continue
		}
		j := int32(-1)
		ok := true
		nodes := int64(cur.nodeCount[s])
		by := cur.internal[s]
		sc := cur.scale[s]
		armScale := int64(-1)
		for _, a := range arms {
			if leader[a] != -1 {
				ok = false
				break
			}
			pa, sa := q.preds(a), q.succs(a)
			if len(pa) != 1 || pa[0] != s || len(sa) != 1 {
				ok = false
				break
			}
			if j == -1 {
				j = sa[0]
			} else if sa[0] != j {
				ok = false
				break
			}
			if armScale == -1 {
				armScale = cur.scale[a]
			} else if cur.scale[a] != armScale {
				ok = false
				break
			}
			nodes += int64(cur.nodeCount[a])
			by += cur.internal[a]
			sc = gcd64(sc, cur.scale[a])
		}
		if !ok || j == -1 || j == s || leader[j] != -1 || len(q.preds(j)) != len(arms) {
			continue
		}
		nodes += int64(cur.nodeCount[j])
		by += cur.internal[j]
		sc = gcd64(sc, cur.scale[j])
		for _, a := range arms {
			by += q.bytesBetween(s, a) + q.bytesBetween(a, j)
		}
		if !fits(nodes, by, sc) {
			continue
		}
		min := s
		for _, a := range arms {
			if a < min {
				min = a
			}
		}
		if j < min {
			min = j
		}
		leader[s], leader[j] = min, min
		for _, a := range arms {
			leader[a] = min
		}
		groups++
	}

	// Passes 2a/2b: chains — u with a unique successor v that has u as its
	// unique predecessor. Rate-matched pairs first so supernodes stay
	// homogeneous, then any remaining chain link.
	for pass := 0; pass < 2; pass++ {
		for u := int32(0); u < int32(U); u++ {
			if leader[u] != -1 {
				continue
			}
			su := q.succs(u)
			if len(su) != 1 {
				continue
			}
			v := su[0]
			if leader[v] != -1 || len(q.preds(v)) != 1 {
				continue
			}
			if pass == 0 && cur.scale[u] != cur.scale[v] {
				continue
			}
			nodes := int64(cur.nodeCount[u]) + int64(cur.nodeCount[v])
			by := cur.internal[u] + cur.internal[v] + q.bytesBetween(u, v)
			sc := gcd64(cur.scale[u], cur.scale[v])
			if !fits(nodes, by, sc) {
				continue
			}
			min := u
			if v < min {
				min = v
			}
			leader[u], leader[v] = min, min
			groups++
		}
	}

	if groups == 0 {
		return nil, nil
	}

	// Renumber: new units ascend by smallest constituent unit id.
	newOf := make([]int32, U)
	for i := range newOf {
		newOf[i] = -1
	}
	var next int32
	for u := int32(0); u < int32(U); u++ {
		m := leader[u]
		if m == -1 {
			m = u
		}
		if newOf[m] == -1 {
			newOf[m] = next
			next++
		}
		newOf[u] = newOf[m]
	}

	nl := &CoarseLevel{
		NumUnits:  int(next),
		Parent:    newOf,
		UnitOf:    make([]int32, len(cur.UnitOf)),
		nodeCount: make([]int32, next),
		scale:     make([]int64, next),
		internal:  make([]int64, next),
	}
	for n, u := range cur.UnitOf {
		nl.UnitOf[n] = newOf[u]
	}
	for u := 0; u < U; u++ {
		nu := newOf[u]
		nl.nodeCount[nu] += cur.nodeCount[u]
		nl.scale[nu] = gcd64(nl.scale[nu], cur.scale[u])
		nl.internal[nu] += cur.internal[u]
	}
	// Cross-unit bytes that became internal to a merged supernode.
	for u := int32(0); u < int32(U); u++ {
		for i := q.succOff[u]; i < q.succOff[u+1]; i++ {
			if v := q.succTo[i]; newOf[u] == newOf[v] {
				nl.internal[newOf[u]] += q.succB[i]
			}
		}
	}
	return nl, nil
}

// quotient is the CSR-indexed DAG over one level's units: distinct
// cross-unit adjacency with aggregated parent-iteration bytes, plus a
// deterministic topological position per unit (used to prune convexity
// searches: along any path positions strictly increase).
type quotient struct {
	n        int
	succOff  []int32
	succTo   []int32
	succB    []int64
	predOff  []int32
	predFrom []int32
	topoPos  []int32
}

func (q *quotient) succs(u int32) []int32 { return q.succTo[q.succOff[u]:q.succOff[u+1]] }
func (q *quotient) preds(u int32) []int32 { return q.predFrom[q.predOff[u]:q.predOff[u+1]] }

// bytesBetween returns the aggregated bytes on the quotient edge a->b (0 if
// absent), by binary search in a's sorted successor bucket.
func (q *quotient) bytesBetween(a, b int32) int64 {
	lo, hi := q.succOff[a], q.succOff[a+1]
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case q.succTo[mid] < b:
			lo = mid + 1
		case q.succTo[mid] > b:
			hi = mid
		default:
			return q.succB[mid]
		}
	}
	return 0
}

// buildQuotient aggregates g's cross-unit edges into the quotient DAG.
func buildQuotient(g *sdf.Graph, unitOf []int32, numUnits int) (*quotient, error) {
	type cross struct {
		from, to int32
		b        int64
	}
	var xs []cross
	for _, e := range g.Edges {
		ua, ub := unitOf[e.Src], unitOf[e.Dst]
		if ua != ub {
			xs = append(xs, cross{ua, ub, g.EdgeBytes(e)})
		}
	}
	sort.Slice(xs, func(i, j int) bool {
		if xs[i].from != xs[j].from {
			return xs[i].from < xs[j].from
		}
		return xs[i].to < xs[j].to
	})
	q := &quotient{n: numUnits, succOff: make([]int32, numUnits+1)}
	for i := 0; i < len(xs); {
		j := i
		var b int64
		for j < len(xs) && xs[j].from == xs[i].from && xs[j].to == xs[i].to {
			b += xs[j].b
			j++
		}
		q.succTo = append(q.succTo, xs[i].to)
		q.succB = append(q.succB, b)
		q.succOff[xs[i].from+1]++
		i = j
	}
	for i := 1; i <= numUnits; i++ {
		q.succOff[i] += q.succOff[i-1]
	}
	// Pred CSR from the distinct succ pairs, re-sorted by (to, from).
	type pair struct{ from, to int32 }
	ps := make([]pair, len(q.succTo))
	k := 0
	for u := int32(0); u < int32(numUnits); u++ {
		for i := q.succOff[u]; i < q.succOff[u+1]; i++ {
			ps[k] = pair{u, q.succTo[i]}
			k++
		}
	}
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].to != ps[j].to {
			return ps[i].to < ps[j].to
		}
		return ps[i].from < ps[j].from
	})
	q.predOff = make([]int32, numUnits+1)
	q.predFrom = make([]int32, len(ps))
	for i, p := range ps {
		q.predFrom[i] = p.from
		q.predOff[p.to+1]++
	}
	for i := 1; i <= numUnits; i++ {
		q.predOff[i] += q.predOff[i-1]
	}

	// Deterministic topological positions (Kahn, smallest unit first). The
	// quotient of an SCC condensation — and of any convexity-preserving
	// contraction of it — is acyclic; failing here means a construction bug.
	indeg := make([]int32, numUnits)
	for u := 0; u < numUnits; u++ {
		indeg[u] = q.predOff[u+1] - q.predOff[u]
	}
	var heap unitHeap
	for u := int32(0); u < int32(numUnits); u++ {
		if indeg[u] == 0 {
			heap.push(u)
		}
	}
	q.topoPos = make([]int32, numUnits)
	pos := int32(0)
	for len(heap) > 0 {
		u := heap.pop()
		q.topoPos[u] = pos
		pos++
		for _, v := range q.succs(u) {
			indeg[v]--
			if indeg[v] == 0 {
				heap.push(v)
			}
		}
	}
	if int(pos) != numUnits {
		return nil, fmt.Errorf("partition: coarsening quotient has a cycle (%d of %d units ordered)", pos, numUnits)
	}
	return q, nil
}

// unitHeap is a binary min-heap of unit indices (quotient Kahn queue).
type unitHeap []int32

func (h *unitHeap) push(u int32) {
	q := append(*h, u)
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) / 2
		if q[p] <= q[i] {
			break
		}
		q[p], q[i] = q[i], q[p]
		i = p
	}
	*h = q
}

func (h *unitHeap) pop() int32 {
	q := *h
	top := q[0]
	last := len(q) - 1
	q[0] = q[last]
	q = q[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(q) && q[l] < q[small] {
			small = l
		}
		if r < len(q) && q[r] < q[small] {
			small = r
		}
		if small == i {
			break
		}
		q[i], q[small] = q[small], q[i]
		i = small
	}
	*h = q
	return top
}

// gcd64 returns gcd(a, b) with gcd(0, x) == x.
func gcd64(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
