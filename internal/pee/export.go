package pee

import (
	"fmt"

	"streammap/internal/artifact"
	"streammap/internal/gpu"
)

// Export returns the estimate's wire form (package pee's explicit
// export/import form: the artifact codec never touches Estimate directly).
func (e *Estimate) Export() artifact.Estimate {
	return artifact.Estimate{
		S: e.Params.S, W: e.Params.W, F: e.Params.F,
		SMBytes: e.SMBytes, DBytes: e.DBytes,
		TcompUS: e.TcompUS, TdtUS: e.TdtUS, TdbUS: e.TdbUS,
		TexecUS: e.TexecUS, TUS: e.TUS, LaunchUS: e.LaunchUS,
		ComputeBound: e.ComputeBound(),
	}
}

// ImportEstimate rebuilds an Estimate from its wire form verbatim — no
// re-estimation, so a decoded artifact scores exactly as the original
// compilation did.
func ImportEstimate(a artifact.Estimate) (*Estimate, error) {
	if a.S <= 0 || a.W <= 0 || a.F <= 0 {
		return nil, fmt.Errorf("pee: import: non-positive kernel parameters (S=%d, W=%d, F=%d)", a.S, a.W, a.F)
	}
	return &Estimate{
		Params:  Params{S: a.S, W: a.W, F: a.F},
		SMBytes: a.SMBytes, DBytes: a.DBytes,
		TcompUS: a.TcompUS, TdtUS: a.TdtUS, TdbUS: a.TdbUS,
		TexecUS: a.TexecUS, TUS: a.TUS, LaunchUS: a.LaunchUS,
	}, nil
}

// Export returns the profile's wire form. The device is carried by the
// artifact's options section, not duplicated here.
func (p *Profile) Export() artifact.Profile {
	return artifact.Profile{
		C1: p.C1, C2: p.C2,
		PerFiringCycles: append([]float64(nil), p.PerFiringCycles...),
	}
}

// ImportProfile rebuilds a Profile from its wire form for the given device.
func ImportProfile(d gpu.Device, a artifact.Profile, numNodes int) (*Profile, error) {
	if len(a.PerFiringCycles) != numNodes {
		return nil, fmt.Errorf("pee: import: %d per-firing costs for %d nodes", len(a.PerFiringCycles), numNodes)
	}
	return &Profile{
		Device: d,
		C1:     a.C1, C2: a.C2,
		PerFiringCycles: append([]float64(nil), a.PerFiringCycles...),
	}, nil
}
