package pee_test

// Differential property test for the hash-keyed memo: over synthetic graphs
// from the same generator the corpus uses, the engine's hash-keyed,
// view-scored EstimateSet must return byte-identical estimates to a
// reference memo keyed on the collision-free NodeSet.Key string and scored
// through Extract + EstimateSubgraph — the pre-refactor path. A divergence
// would mean either the view scoring drifted from the materialized scoring
// or a hash collision misattributed a memo entry.

import (
	"errors"
	"testing"

	"streammap/internal/gpu"
	"streammap/internal/pee"
	"streammap/internal/sdf"
	"streammap/internal/synth"
)

// refEstimate is the reference path: string-keyed memo over the extracted
// subgraph.
type refEstimate struct {
	g    *sdf.Graph
	prof *pee.Profile
	memo map[string]refEntry
}

type refEntry struct {
	est *pee.Estimate
	err error
}

func (r *refEstimate) estimate(set sdf.NodeSet) (*pee.Estimate, error) {
	key := set.Key()
	if e, ok := r.memo[key]; ok {
		return e.est, e.err
	}
	var entry refEntry
	sub, err := r.g.Extract(set)
	if err != nil {
		entry = refEntry{nil, err}
	} else {
		est, err := pee.EstimateSubgraph(sub, r.prof)
		entry = refEntry{est, err}
	}
	r.memo[key] = entry
	return entry.est, entry.err
}

// candidateSets enumerates a Try-Merge-like family over g: every singleton,
// growing windows along the topological order (the phase-1 shape), and every
// adjacent pair union (the phase-3 shape).
func candidateSets(t *testing.T, g *sdf.Graph) []sdf.NodeSet {
	t.Helper()
	n := g.NumNodes()
	var sets []sdf.NodeSet
	for i := 0; i < n; i++ {
		sets = append(sets, sdf.SingletonSet(n, sdf.NodeID(i)))
	}
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatalf("topo order: %v", err)
	}
	for start := 0; start < len(order); start += 3 {
		w := sdf.NewNodeSet(n)
		for size := 0; size < 6 && start+size < len(order); size++ {
			w.Add(order[start+size])
			sets = append(sets, w.Clone())
		}
	}
	for i := 0; i < n; i++ {
		for _, v := range g.Succ(sdf.NodeID(i)) {
			u := sdf.NewNodeSet(n)
			u.Add(sdf.NodeID(i))
			u.Add(v)
			sets = append(sets, u)
		}
	}
	return sets
}

func estimatesEqual(a, b *pee.Estimate) bool {
	if a == nil || b == nil {
		return a == b
	}
	return *a == *b // flat struct of ints and float64s: byte-identical check
}

func TestHashMemoMatchesStringKeyedReference(t *testing.T) {
	for seed := uint64(1); seed <= 12; seed++ {
		g, err := synth.BuildGraph(synth.GraphParams{Seed: seed, Filters: 16})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		prof := pee.ProfileGraph(g, gpu.M2090())
		eng := pee.NewEngine(g, prof)
		ref := &refEstimate{g: g, prof: prof, memo: map[string]refEntry{}}
		for _, set := range candidateSets(t, g) {
			got, gotErr := eng.EstimateSet(set)
			want, wantErr := ref.estimate(set)
			if (gotErr == nil) != (wantErr == nil) {
				t.Fatalf("seed %d set %v: error mismatch: engine %v, reference %v", seed, set, gotErr, wantErr)
			}
			if gotErr != nil {
				if errors.Is(gotErr, pee.ErrInfeasible) != errors.Is(wantErr, pee.ErrInfeasible) {
					t.Fatalf("seed %d set %v: error kind mismatch: engine %v, reference %v", seed, set, gotErr, wantErr)
				}
				continue
			}
			if !estimatesEqual(got, want) {
				t.Fatalf("seed %d set %v: estimate mismatch:\nengine    %+v\nreference %+v", seed, set, got, want)
			}
		}
		// Scoring twice from a warm memo must be stable too.
		for _, set := range candidateSets(t, g) {
			got, gotErr := eng.EstimateSet(set)
			want, wantErr := ref.estimate(set)
			if (gotErr == nil) != (wantErr == nil) || (gotErr == nil && !estimatesEqual(got, want)) {
				t.Fatalf("seed %d set %v: warm re-query diverged", seed, set)
			}
		}
		if st := eng.Stats(); st.Collisions != 0 {
			t.Logf("seed %d: %d genuine 64-bit hash collisions (fallback compare engaged)", seed, st.Collisions)
		}
	}
}

// TestScaleOfMatchesExtract pins the deferred-extraction workload scale: the
// engine's gcd-of-reps shortcut must equal the Scale Extract records.
func TestScaleOfMatchesExtract(t *testing.T) {
	g, err := synth.BuildGraph(synth.GraphParams{Seed: 7, Filters: 14})
	if err != nil {
		t.Fatal(err)
	}
	eng := pee.NewEngine(g, pee.ProfileGraph(g, gpu.M2090()))
	for _, set := range candidateSets(t, g) {
		sub, err := g.Extract(set)
		if err != nil {
			continue
		}
		if got := eng.ScaleOf(set); got != sub.Scale {
			t.Fatalf("set %v: ScaleOf %d != Extract scale %d", set, got, sub.Scale)
		}
	}
}
