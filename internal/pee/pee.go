// Package pee implements the paper's GPU Performance Estimation Engine
// (§3.3): given any subgraph of a stream graph, it selects the kernel
// parameters — S compute threads per execution, W concurrent executions per
// SM, F data-transfer threads — and statically predicts the kernel's
// execution time with the model
//
//	Texec = max(Tcomp, Tdt) + Tdb            (III.8)
//	Tcomp = Σ_i t_i / min(f_i, S)            (III.9)
//	Tdt   = C1 · D / F                       (III.10)
//	Tdb   = C2 · D / (F + W·S)               (III.11)
//	T     = Texec / W                        (III.12)
//
// where t_i is the profiled single-thread time of one steady-state iteration
// of filter i, f_i its firing rate within the subgraph, and D the kernel's
// I/O traffic (all W executions).
//
// The same parameter selection is reused verbatim by the code generator, so
// there is no "static discrepancy" between what the estimator scores and
// what is generated — a point the paper calls essential for accuracy.
package pee

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"streammap/internal/gpu"
	"streammap/internal/sdf"
	"streammap/internal/smreq"
)

// Paper regression constants (§4.0.1). The device model constants in
// package gpu are chosen so that these are also the exact values of our
// simulated hardware; Calibrate recovers them from profiled samples.
const (
	DefaultC1 = 38.4 // cycles per byte per DT thread
	DefaultC2 = 11.2 // cycles per byte per swapping thread
)

// ErrInfeasible is returned when a subgraph cannot fit one execution in
// shared memory even with the minimal parameters.
var ErrInfeasible = errors.New("pee: subgraph exceeds shared memory for any parameter choice")

// Profile carries the per-filter profiling annotation of §3.3.1: the number
// of GPU cycles one firing of each node costs when run by a single thread
// (prefetching suppressed). t_i of the model is PerFiringCycles[i] times the
// node's firing rate in the subgraph under estimation.
type Profile struct {
	Device          gpu.Device
	C1, C2          float64
	PerFiringCycles []float64 // indexed by parent-graph node id
}

// ProfileGraph profiles every filter of g for the device: the annotation
// step that runs each filter as a single-thread kernel. The cost law is the
// same one the simulator charges, which is exactly the paper's situation —
// profiling measures the target hardware.
func ProfileGraph(g *sdf.Graph, d gpu.Device) *Profile {
	// The regression constants are device facts: cycles per byte per DT
	// thread (C1) and per swapping thread (C2). On M2090 they are exactly
	// the paper's 38.4 and 11.2.
	p := &Profile{Device: d,
		C1:              d.GMCyclesPerTokenPerF / sdf.TokenBytes,
		C2:              d.SwapCyclesPerToken / sdf.TokenBytes,
		PerFiringCycles: make([]float64, g.NumNodes())}
	for _, n := range g.Nodes {
		p.PerFiringCycles[n.ID] = FiringCycles(d, n.Filter)
	}
	return p
}

// FiringCycles is the shared compute-cost law: cycles for one firing of a
// filter by one thread (fixed overhead + arithmetic + shared-memory moves).
// Zero-copy filters (splitter/joiner elimination, Chapter V) degenerate to
// the index-adjustment overhead alone.
func FiringCycles(d gpu.Device, f *sdf.Filter) float64 {
	if f.ZeroCopy {
		return d.FiringOverhead
	}
	tokens := 0
	for _, in := range f.Inputs {
		tokens += in.Peek
	}
	for _, push := range f.Outputs {
		tokens += push
	}
	return d.FiringOverhead + float64(f.Ops)*d.CyclesPerOp + float64(tokens)*d.SMCyclesPerToken
}

// Params are the kernel parameters the estimator selects (§3.3.1).
type Params struct {
	S int // compute threads per execution
	W int // executions per SM
	F int // data transfer threads
}

// Estimate is the engine's verdict for one subgraph.
type Estimate struct {
	Params  Params
	SMBytes int64 // shared-memory bytes per execution (allocator peak)
	DBytes  int64 // I/O bytes per execution

	TcompUS float64 // per-kernel compute time (independent of W, see III.9)
	TdtUS   float64 // per-kernel data-transfer time (all W executions)
	TdbUS   float64 // buffer-swap time
	TexecUS float64 // max(Tcomp,Tdt)+Tdb
	TUS     float64 // normalized per-execution time Texec/W

	LaunchUS float64 // fixed per-kernel-invocation cost (not in TUS)
}

// ComputeBound reports whether the partition's compute time dominates its
// data-transfer time (the classification driving partitioning phase 3).
func (e *Estimate) ComputeBound() bool { return e.TcompUS >= e.TdtUS }

// memoShards is the number of independently locked memo shards. Sharding
// keeps concurrent Try-Merge scoring from serializing on one mutex.
const memoShards = 64

// Engine estimates subgraphs against one profile, memoizing by node set.
// It is safe for concurrent use: the memo is sharded by the set's 64-bit
// hash and the counters are atomic, so the partitioner's worker pool and
// core.Service can share one engine per graph.
//
// The hot path is allocation-lean: queries key on sdf.NodeSet.Hash (no
// string key is built), hits return after a word-compare against the stored
// set, and misses score the candidate through a pooled sdf.SubView instead
// of materializing the subgraph with Extract.
type Engine struct {
	Graph *sdf.Graph
	Prof  *Profile

	// Tables derived once in NewEngine so the per-candidate sweep indexes
	// plain slices instead of calling into the graph.
	rep []int64 // parent repetition vector, indexed by node id

	shards     [memoShards]memoShard
	queries    atomic.Int64
	misses     atomic.Int64
	collisions atomic.Int64
	uncached   atomic.Int64

	scratch sync.Pool // *estScratch
}

type memoShard struct {
	mu sync.RWMutex
	// memo buckets entries by set hash; a bucket with more than one entry is
	// a hash collision, disambiguated by the word-compare in lookup.
	memo map[uint64][]*memoEntry
}

type memoEntry struct {
	set sdf.NodeSet // owned clone; the collision-safe identity
	est *Estimate
	err error
}

// estScratch is the per-goroutine scoring workspace: the subgraph view plus
// the sweep's candidate buffers.
type estScratch struct {
	view  sdf.SubView
	costs []nodeCost
	sVals []int
}

// setHash is the memo hash function, a var so the collision-fallback test
// can force every set into one bucket.
var setHash = sdf.NodeSet.Hash

// NewEngine returns an estimation engine for the profiled graph. The graph
// must have a steady state (ProfileGraph's precondition too): the engine
// snapshots the repetition vector for the scoring hot path.
func NewEngine(g *sdf.Graph, prof *Profile) *Engine {
	e := &Engine{Graph: g, Prof: prof}
	e.rep = make([]int64, g.NumNodes())
	for _, n := range g.Nodes {
		e.rep[n.ID] = g.Rep(n.ID)
	}
	for i := range e.shards {
		e.shards[i].memo = map[uint64][]*memoEntry{}
	}
	e.scratch.New = func() interface{} { return &estScratch{} }
	return e
}

// Stats is the engine's instrumentation snapshot. Under serial use the
// counts are exact; under concurrent use two goroutines racing on the same
// uncached set may both count a miss.
type Stats struct {
	Queries    int64 // EstimateSet calls
	Misses     int64 // queries that computed a fresh estimate
	Collisions int64 // memo inserts whose 64-bit hash bucket was occupied
	Uncached   int64 // EstimateMembers calls (scored outside the memo)
}

// Hits returns the memoized-query count.
func (s Stats) Hits() int64 { return s.Queries - s.Misses }

// HitRate returns hits/queries in [0,1] (0 when no queries ran).
func (s Stats) HitRate() float64 {
	if s.Queries == 0 {
		return 0
	}
	return float64(s.Hits()) / float64(s.Queries)
}

// String renders the snapshot for reports and stage provenance.
func (s Stats) String() string {
	out := fmt.Sprintf("queries=%d hits=%d misses=%d hitRate=%.3f collisions=%d",
		s.Queries, s.Hits(), s.Misses, s.HitRate(), s.Collisions)
	if s.Uncached > 0 {
		out += fmt.Sprintf(" uncached=%d", s.Uncached)
	}
	return out
}

// Stats returns the engine's instrumentation counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Queries:    e.queries.Load(),
		Misses:     e.misses.Load(),
		Collisions: e.collisions.Load(),
		Uncached:   e.uncached.Load(),
	}
}

// ScaleOf returns the granularity scale Extract would record for set: the
// gcd of the members' parent repetition counts (parent reps = Scale * sub
// reps). It reads the engine's precomputed repetition table and allocates
// nothing, letting the partitioner compare workloads without extracting.
func (e *Engine) ScaleOf(set sdf.NodeSet) int64 {
	var g int64
	set.ForEach(func(id sdf.NodeID) {
		a, b := g, e.rep[id]
		for b != 0 {
			a, b = b, a%b
		}
		g = a
	})
	if g == 0 {
		return 1
	}
	return g
}

// lookup scans a bucket for the entry matching set exactly.
func bucketFind(bucket []*memoEntry, set sdf.NodeSet) *memoEntry {
	for _, m := range bucket {
		if m.set.Equal(set) {
			return m
		}
	}
	return nil
}

// Cached reports whether the verdict for set is already memoized, without
// counting a query. Speculative scorers use it to skip warm candidates.
func (e *Engine) Cached(set sdf.NodeSet) bool {
	h := setHash(set)
	sh := &e.shards[h%memoShards]
	sh.mu.RLock()
	m := bucketFind(sh.memo[h], set)
	sh.mu.RUnlock()
	return m != nil
}

// EstimateSet estimates the partition given as a node set of the parent
// graph. The hit path performs no allocation.
func (e *Engine) EstimateSet(set sdf.NodeSet) (*Estimate, error) {
	e.queries.Add(1)
	h := setHash(set)
	sh := &e.shards[h%memoShards]
	sh.mu.RLock()
	m := bucketFind(sh.memo[h], set)
	sh.mu.RUnlock()
	if m != nil {
		return m.est, m.err
	}
	// Compute outside the lock; scoring is deterministic, so a concurrent
	// duplicate computation yields an identical entry and the first writer
	// wins.
	sc := e.scratch.Get().(*estScratch)
	est, err := e.estimateInto(sc, set)
	e.scratch.Put(sc)
	entry := &memoEntry{set: set.Clone(), est: est, err: err}
	sh.mu.Lock()
	if prev := bucketFind(sh.memo[h], set); prev != nil {
		sh.mu.Unlock()
		return prev.est, prev.err
	}
	if len(sh.memo[h]) > 0 {
		e.collisions.Add(1)
	}
	sh.memo[h] = append(sh.memo[h], entry)
	sh.mu.Unlock()
	e.misses.Add(1)
	return entry.est, entry.err
}

// EstimateMembers scores set like EstimateSet but entirely outside the memo:
// no lookup, no stored clone of the set. The caller supplies set's member
// list in ascending order, so no full bitset scan happens either — the call
// is O(members + incident edges) regardless of parent graph size. The
// multilevel partitioner uses it for coarse-candidate scoring, where cloning
// a 10^6-capacity bitset per memo insert would dominate memory, and where
// candidates are rarely re-queried.
func (e *Engine) EstimateMembers(set sdf.NodeSet, members []sdf.NodeID) (*Estimate, error) {
	e.uncached.Add(1)
	if len(members) == 0 {
		return nil, fmt.Errorf("sdf: Extract: empty set")
	}
	sc := e.scratch.Get().(*estScratch)
	sc.view.FillMembers(e.Graph, set, members)
	est, err := estimateView(&sc.view, e.Prof, sc)
	e.scratch.Put(sc)
	return est, err
}

// estimateInto scores one candidate set through the view path, reusing the
// scratch workspace. It reproduces EstimateSubgraph∘Extract bit for bit:
// the same member order drives the same cost summation, the same SM and I/O
// byte totals feed the same parameter sweep, and the same infeasibility
// conditions yield the same errors.
func (e *Engine) estimateInto(sc *estScratch, set sdf.NodeSet) (*Estimate, error) {
	if set.Len() == 0 {
		return nil, fmt.Errorf("sdf: Extract: empty set")
	}
	sc.view.Fill(e.Graph, set)
	return estimateView(&sc.view, e.Prof, sc)
}

// nodeCost is one member's contribution to Tcomp: t_i in cycles and the
// firing rate that bounds its intra-execution parallelism.
type nodeCost struct {
	cycles float64 // t_i = f_i * perFiring
	f      int64
}

// appendCandidates accumulates one member's candidate S value: its firing
// rate when it fits in a block, else the largest warp-aligned S.
func appendCandidates(sVals []int, f int64, d gpu.Device) []int {
	if f < int64(d.MaxThreadsPerBlock) {
		return append(sVals, int(f))
	}
	return append(sVals, d.MaxThreadsPerBlock-d.WarpSize)
}

// finishCandidates adds the warp-multiple candidates, then sorts,
// deduplicates and range-filters in place — the same candidate set the
// older map-backed construction produced, without the per-call map.
func finishCandidates(sVals []int, d gpu.Device) []int {
	sVals = append(sVals, 1)
	for s := d.WarpSize; s <= d.MaxThreadsPerBlock/2; s *= 2 {
		sVals = append(sVals, s)
	}
	sort.Ints(sVals)
	out := sVals[:0]
	for i, v := range sVals {
		if v < 1 || v >= d.MaxThreadsPerBlock {
			continue
		}
		if i > 0 && sVals[i-1] == v {
			continue
		}
		out = append(out, v)
	}
	return out
}

// sweep runs the parameter selection (S, W, F) and performance model over
// the prepared cost table. It is the shared core of EstimateSubgraph and
// the engine's view-based scoring.
func sweep(prof *Profile, costs []nodeCost, sVals []int, smBytes, dBytes int64) (*Estimate, error) {
	d := prof.Device
	maxW := int(d.SharedMemPerSM / smBytes)
	if maxW < 1 {
		return nil, fmt.Errorf("%w: need %d bytes, have %d", ErrInfeasible, smBytes, d.SharedMemPerSM)
	}
	tcomp := func(S int) float64 {
		var c float64
		for _, nc := range costs {
			par := nc.f
			if int64(S) < par {
				par = int64(S)
			}
			c += nc.cycles / float64(par)
		}
		return c
	}

	best := Estimate{TUS: -1}
	bestCycles := -1.0
	for _, S := range sVals {
		tc := tcomp(S)
		for W := 1; W <= maxW; W++ {
			if W*S >= d.MaxThreadsPerBlock {
				break
			}
			maxF := d.MaxThreadsPerBlock - W*S
			for F := d.WarpSize; F <= maxF; F += d.WarpSize {
				D := float64(dBytes) * float64(W)
				tdt := prof.C1 * D / float64(F)
				tdb := prof.C2 * D / float64(F+W*S)
				texec := tc
				if tdt > texec {
					texec = tdt
				}
				texec += tdb
				t := texec / float64(W)
				if bestCycles < 0 || t < bestCycles {
					bestCycles = t
					best = Estimate{
						Params:  Params{S: S, W: W, F: F},
						SMBytes: smBytes,
						DBytes:  dBytes,
						TcompUS: d.CyclesToUS(tc),
						TdtUS:   d.CyclesToUS(tdt),
						TdbUS:   d.CyclesToUS(tdb),
						TexecUS: d.CyclesToUS(texec),
						TUS:     d.CyclesToUS(t),
					}
				}
			}
		}
	}
	if bestCycles < 0 {
		return nil, fmt.Errorf("%w: no feasible thread configuration", ErrInfeasible)
	}
	best.LaunchUS = d.KernelLaunchUS
	return &best, nil
}

// estimateView scores the induced subgraph a view describes, reusing the
// scratch buffers. Member order equals the extracted subgraph's node order
// (both ascend by parent id), so the cost summation — and with it every
// float of the model — matches EstimateSubgraph on the extracted form.
func estimateView(v *sdf.SubView, prof *Profile, sc *estScratch) (*Estimate, error) {
	d := prof.Device
	smBytes, err := smreq.PeakBytesView(v)
	if err != nil {
		return nil, err
	}
	dBytes := v.IOBytesPerIteration()

	costs := sc.costs[:0]
	sVals := sc.sVals[:0]
	for i, pid := range v.Members() {
		f := v.RepAt(i)
		costs = append(costs, nodeCost{cycles: float64(f) * prof.PerFiringCycles[pid], f: f})
		sVals = appendCandidates(sVals, f, d)
	}
	sVals = finishCandidates(sVals, d)
	sc.costs, sc.sVals = costs, sVals
	return sweep(prof, costs, sVals, smBytes, dBytes)
}

// EstimateSubgraph runs parameter selection and the performance model for
// one materialized subgraph. The engine's memoized path scores views
// instead (same numbers, no extraction); this entry point remains for
// callers that already hold a Subgraph.
func EstimateSubgraph(s *sdf.Subgraph, prof *Profile) (*Estimate, error) {
	d := prof.Device
	lay, err := smreq.Analyze(s)
	if err != nil {
		return nil, err
	}
	smBytes := lay.PeakBytes
	dBytes := s.IOBytesPerIteration()

	costs := make([]nodeCost, 0, s.Sub.NumNodes())
	var sVals []int
	for _, n := range s.Sub.Nodes {
		f := s.Sub.Rep(n.ID)
		parent := s.NodeOf[n.ID]
		costs = append(costs, nodeCost{cycles: float64(f) * prof.PerFiringCycles[parent], f: f})
		sVals = appendCandidates(sVals, f, d)
	}
	sVals = finishCandidates(sVals, d)
	return sweep(prof, costs, sVals, smBytes, dBytes)
}

// Sample is one calibration observation: a kernel run with known parameters
// and measured transfer/swap times (µs).
type Sample struct {
	DBytes    int64 // total kernel I/O bytes (all W executions)
	Params    Params
	MeasDtUS  float64
	MeasDbUS  float64
	DeviceMHz float64
}

// Calibrate fits C1 and C2 by least squares through the origin, exactly the
// paper's linear-regression procedure over profiled data (§4.0.1):
// Tdt ≈ C1·D/F and Tdb ≈ C2·D/(F+W·S), with times converted to cycles.
func Calibrate(samples []Sample) (c1, c2 float64, err error) {
	if len(samples) == 0 {
		return 0, 0, errors.New("pee: Calibrate: no samples")
	}
	var sxx1, sxy1, sxx2, sxy2 float64
	for _, s := range samples {
		if s.Params.F <= 0 || s.DeviceMHz <= 0 {
			return 0, 0, fmt.Errorf("pee: Calibrate: bad sample %+v", s)
		}
		x1 := float64(s.DBytes) / float64(s.Params.F)
		y1 := s.MeasDtUS * s.DeviceMHz // cycles
		sxx1 += x1 * x1
		sxy1 += x1 * y1
		x2 := float64(s.DBytes) / float64(s.Params.F+s.Params.W*s.Params.S)
		y2 := s.MeasDbUS * s.DeviceMHz
		sxx2 += x2 * x2
		sxy2 += x2 * y2
	}
	if sxx1 == 0 || sxx2 == 0 {
		return 0, 0, errors.New("pee: Calibrate: degenerate samples")
	}
	return sxy1 / sxx1, sxy2 / sxx2, nil
}

// RSquared computes the coefficient of determination between predictions
// and measurements (used to report the Figure 4.1 fit quality).
func RSquared(pred, meas []float64) float64 {
	if len(pred) != len(meas) || len(pred) == 0 {
		return 0
	}
	var mean float64
	for _, m := range meas {
		mean += m
	}
	mean /= float64(len(meas))
	var ssRes, ssTot float64
	for i := range meas {
		d := meas[i] - pred[i]
		ssRes += d * d
		t := meas[i] - mean
		ssTot += t * t
	}
	if ssTot == 0 {
		return 1
	}
	return 1 - ssRes/ssTot
}
