// Package pee implements the paper's GPU Performance Estimation Engine
// (§3.3): given any subgraph of a stream graph, it selects the kernel
// parameters — S compute threads per execution, W concurrent executions per
// SM, F data-transfer threads — and statically predicts the kernel's
// execution time with the model
//
//	Texec = max(Tcomp, Tdt) + Tdb            (III.8)
//	Tcomp = Σ_i t_i / min(f_i, S)            (III.9)
//	Tdt   = C1 · D / F                       (III.10)
//	Tdb   = C2 · D / (F + W·S)               (III.11)
//	T     = Texec / W                        (III.12)
//
// where t_i is the profiled single-thread time of one steady-state iteration
// of filter i, f_i its firing rate within the subgraph, and D the kernel's
// I/O traffic (all W executions).
//
// The same parameter selection is reused verbatim by the code generator, so
// there is no "static discrepancy" between what the estimator scores and
// what is generated — a point the paper calls essential for accuracy.
package pee

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"streammap/internal/gpu"
	"streammap/internal/sdf"
	"streammap/internal/smreq"
)

// Paper regression constants (§4.0.1). The device model constants in
// package gpu are chosen so that these are also the exact values of our
// simulated hardware; Calibrate recovers them from profiled samples.
const (
	DefaultC1 = 38.4 // cycles per byte per DT thread
	DefaultC2 = 11.2 // cycles per byte per swapping thread
)

// ErrInfeasible is returned when a subgraph cannot fit one execution in
// shared memory even with the minimal parameters.
var ErrInfeasible = errors.New("pee: subgraph exceeds shared memory for any parameter choice")

// Profile carries the per-filter profiling annotation of §3.3.1: the number
// of GPU cycles one firing of each node costs when run by a single thread
// (prefetching suppressed). t_i of the model is PerFiringCycles[i] times the
// node's firing rate in the subgraph under estimation.
type Profile struct {
	Device          gpu.Device
	C1, C2          float64
	PerFiringCycles []float64 // indexed by parent-graph node id
}

// ProfileGraph profiles every filter of g for the device: the annotation
// step that runs each filter as a single-thread kernel. The cost law is the
// same one the simulator charges, which is exactly the paper's situation —
// profiling measures the target hardware.
func ProfileGraph(g *sdf.Graph, d gpu.Device) *Profile {
	// The regression constants are device facts: cycles per byte per DT
	// thread (C1) and per swapping thread (C2). On M2090 they are exactly
	// the paper's 38.4 and 11.2.
	p := &Profile{Device: d,
		C1:              d.GMCyclesPerTokenPerF / sdf.TokenBytes,
		C2:              d.SwapCyclesPerToken / sdf.TokenBytes,
		PerFiringCycles: make([]float64, g.NumNodes())}
	for _, n := range g.Nodes {
		p.PerFiringCycles[n.ID] = FiringCycles(d, n.Filter)
	}
	return p
}

// FiringCycles is the shared compute-cost law: cycles for one firing of a
// filter by one thread (fixed overhead + arithmetic + shared-memory moves).
// Zero-copy filters (splitter/joiner elimination, Chapter V) degenerate to
// the index-adjustment overhead alone.
func FiringCycles(d gpu.Device, f *sdf.Filter) float64 {
	if f.ZeroCopy {
		return d.FiringOverhead
	}
	tokens := 0
	for _, in := range f.Inputs {
		tokens += in.Peek
	}
	for _, push := range f.Outputs {
		tokens += push
	}
	return d.FiringOverhead + float64(f.Ops)*d.CyclesPerOp + float64(tokens)*d.SMCyclesPerToken
}

// Params are the kernel parameters the estimator selects (§3.3.1).
type Params struct {
	S int // compute threads per execution
	W int // executions per SM
	F int // data transfer threads
}

// Estimate is the engine's verdict for one subgraph.
type Estimate struct {
	Params  Params
	SMBytes int64 // shared-memory bytes per execution (allocator peak)
	DBytes  int64 // I/O bytes per execution

	TcompUS float64 // per-kernel compute time (independent of W, see III.9)
	TdtUS   float64 // per-kernel data-transfer time (all W executions)
	TdbUS   float64 // buffer-swap time
	TexecUS float64 // max(Tcomp,Tdt)+Tdb
	TUS     float64 // normalized per-execution time Texec/W

	LaunchUS float64 // fixed per-kernel-invocation cost (not in TUS)
}

// ComputeBound reports whether the partition's compute time dominates its
// data-transfer time (the classification driving partitioning phase 3).
func (e *Estimate) ComputeBound() bool { return e.TcompUS >= e.TdtUS }

// memoShards is the number of independently locked memo shards. Sharding
// keeps concurrent Try-Merge scoring from serializing on one mutex.
const memoShards = 64

// Engine estimates subgraphs against one profile, memoizing by node set.
// It is safe for concurrent use: the memo is sharded by a hash of the set
// key and the counters are atomic, so the partitioner's worker pool and
// core.Service can share one engine per graph.
type Engine struct {
	Graph   *sdf.Graph
	Prof    *Profile
	shards  [memoShards]memoShard
	queries atomic.Int64
	misses  atomic.Int64
}

type memoShard struct {
	mu   sync.RWMutex
	memo map[string]*memoEntry
}

type memoEntry struct {
	est *Estimate
	err error
}

// NewEngine returns an estimation engine for the profiled graph.
func NewEngine(g *sdf.Graph, prof *Profile) *Engine {
	e := &Engine{Graph: g, Prof: prof}
	for i := range e.shards {
		e.shards[i].memo = map[string]*memoEntry{}
	}
	return e
}

// Stats returns (queries, cache misses) for instrumentation. Under serial
// use the counts are exact; under concurrent use two goroutines racing on
// the same uncached set may both count a miss.
func (e *Engine) Stats() (int, int) { return int(e.queries.Load()), int(e.misses.Load()) }

// shardOf hashes a memo key to its shard (FNV-1a).
func shardOf(key string) int {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return int(h % memoShards)
}

// Cached reports whether the verdict for set is already memoized, without
// counting a query. Speculative scorers use it to skip warm candidates.
func (e *Engine) Cached(set sdf.NodeSet) bool {
	key := set.Key()
	sh := &e.shards[shardOf(key)]
	sh.mu.RLock()
	_, ok := sh.memo[key]
	sh.mu.RUnlock()
	return ok
}

// EstimateSet estimates the partition given as a node set of the parent
// graph.
func (e *Engine) EstimateSet(set sdf.NodeSet) (*Estimate, error) {
	e.queries.Add(1)
	key := set.Key()
	sh := &e.shards[shardOf(key)]
	sh.mu.RLock()
	m, ok := sh.memo[key]
	sh.mu.RUnlock()
	if ok {
		return m.est, m.err
	}
	// Compute outside the lock; EstimateSubgraph is deterministic, so a
	// concurrent duplicate computation yields an identical entry and the
	// first writer wins.
	var entry *memoEntry
	sub, err := e.Graph.Extract(set)
	if err != nil {
		entry = &memoEntry{nil, err}
	} else {
		est, err := EstimateSubgraph(sub, e.Prof)
		entry = &memoEntry{est, err}
	}
	sh.mu.Lock()
	if prev, ok := sh.memo[key]; ok {
		sh.mu.Unlock()
		return prev.est, prev.err
	}
	sh.memo[key] = entry
	sh.mu.Unlock()
	e.misses.Add(1)
	return entry.est, entry.err
}

// EstimateSubgraph runs parameter selection and the performance model for
// one subgraph.
func EstimateSubgraph(s *sdf.Subgraph, prof *Profile) (*Estimate, error) {
	d := prof.Device
	lay, err := smreq.Analyze(s)
	if err != nil {
		return nil, err
	}
	smBytes := lay.PeakBytes
	dBytes := s.IOBytesPerIteration()

	maxW := int(d.SharedMemPerSM / smBytes)
	if maxW < 1 {
		return nil, fmt.Errorf("%w: need %d bytes, have %d", ErrInfeasible, smBytes, d.SharedMemPerSM)
	}

	// t_i in cycles and candidate S values: Tcomp only changes at distinct
	// firing rates; warp multiples additionally help Tdb.
	type nodeCost struct {
		cycles float64 // t_i = f_i * perFiring
		f      int64
	}
	costs := make([]nodeCost, 0, s.Sub.NumNodes())
	candS := map[int]bool{1: true}
	for _, n := range s.Sub.Nodes {
		f := s.Sub.Rep(n.ID)
		parent := s.NodeOf[n.ID]
		costs = append(costs, nodeCost{
			cycles: float64(f) * prof.PerFiringCycles[parent],
			f:      f,
		})
		if f < int64(d.MaxThreadsPerBlock) {
			candS[int(f)] = true
		} else {
			candS[d.MaxThreadsPerBlock-d.WarpSize] = true
		}
	}
	for s := d.WarpSize; s <= d.MaxThreadsPerBlock/2; s *= 2 {
		candS[s] = true
	}
	sVals := make([]int, 0, len(candS))
	for v := range candS {
		if v >= 1 && v < d.MaxThreadsPerBlock {
			sVals = append(sVals, v)
		}
	}
	sort.Ints(sVals)

	tcomp := func(S int) float64 {
		var c float64
		for _, nc := range costs {
			par := nc.f
			if int64(S) < par {
				par = int64(S)
			}
			c += nc.cycles / float64(par)
		}
		return c
	}

	best := Estimate{TUS: -1}
	bestCycles := -1.0
	for _, S := range sVals {
		tc := tcomp(S)
		for W := 1; W <= maxW; W++ {
			if W*S >= d.MaxThreadsPerBlock {
				break
			}
			maxF := d.MaxThreadsPerBlock - W*S
			for F := d.WarpSize; F <= maxF; F += d.WarpSize {
				D := float64(dBytes) * float64(W)
				tdt := prof.C1 * D / float64(F)
				tdb := prof.C2 * D / float64(F+W*S)
				texec := tc
				if tdt > texec {
					texec = tdt
				}
				texec += tdb
				t := texec / float64(W)
				if bestCycles < 0 || t < bestCycles {
					bestCycles = t
					best = Estimate{
						Params:  Params{S: S, W: W, F: F},
						SMBytes: smBytes,
						DBytes:  dBytes,
						TcompUS: d.CyclesToUS(tc),
						TdtUS:   d.CyclesToUS(tdt),
						TdbUS:   d.CyclesToUS(tdb),
						TexecUS: d.CyclesToUS(texec),
						TUS:     d.CyclesToUS(t),
					}
				}
			}
		}
	}
	if bestCycles < 0 {
		return nil, fmt.Errorf("%w: no feasible thread configuration", ErrInfeasible)
	}
	best.LaunchUS = d.KernelLaunchUS
	return &best, nil
}

// Sample is one calibration observation: a kernel run with known parameters
// and measured transfer/swap times (µs).
type Sample struct {
	DBytes    int64 // total kernel I/O bytes (all W executions)
	Params    Params
	MeasDtUS  float64
	MeasDbUS  float64
	DeviceMHz float64
}

// Calibrate fits C1 and C2 by least squares through the origin, exactly the
// paper's linear-regression procedure over profiled data (§4.0.1):
// Tdt ≈ C1·D/F and Tdb ≈ C2·D/(F+W·S), with times converted to cycles.
func Calibrate(samples []Sample) (c1, c2 float64, err error) {
	if len(samples) == 0 {
		return 0, 0, errors.New("pee: Calibrate: no samples")
	}
	var sxx1, sxy1, sxx2, sxy2 float64
	for _, s := range samples {
		if s.Params.F <= 0 || s.DeviceMHz <= 0 {
			return 0, 0, fmt.Errorf("pee: Calibrate: bad sample %+v", s)
		}
		x1 := float64(s.DBytes) / float64(s.Params.F)
		y1 := s.MeasDtUS * s.DeviceMHz // cycles
		sxx1 += x1 * x1
		sxy1 += x1 * y1
		x2 := float64(s.DBytes) / float64(s.Params.F+s.Params.W*s.Params.S)
		y2 := s.MeasDbUS * s.DeviceMHz
		sxx2 += x2 * x2
		sxy2 += x2 * y2
	}
	if sxx1 == 0 || sxx2 == 0 {
		return 0, 0, errors.New("pee: Calibrate: degenerate samples")
	}
	return sxy1 / sxx1, sxy2 / sxx2, nil
}

// RSquared computes the coefficient of determination between predictions
// and measurements (used to report the Figure 4.1 fit quality).
func RSquared(pred, meas []float64) float64 {
	if len(pred) != len(meas) || len(pred) == 0 {
		return 0
	}
	var mean float64
	for _, m := range meas {
		mean += m
	}
	mean /= float64(len(meas))
	var ssRes, ssTot float64
	for i := range meas {
		d := meas[i] - pred[i]
		ssRes += d * d
		t := meas[i] - mean
		ssTot += t * t
	}
	if ssTot == 0 {
		return 1
	}
	return 1 - ssRes/ssTot
}
