package pee

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"streammap/internal/gpu"
	"streammap/internal/sdf"
)

func work(name string, n int, ops int64) *sdf.Filter {
	return sdf.NewFilter(name, n, n, 0, ops, func(w *sdf.Work) {
		copy(w.Out[0], w.In[0][:n])
	})
}

func wholeSub(t *testing.T, g *sdf.Graph) *sdf.Subgraph {
	t.Helper()
	set := sdf.NewNodeSet(g.NumNodes())
	for _, n := range g.Nodes {
		set.Add(n.ID)
	}
	sub, err := g.Extract(set)
	if err != nil {
		t.Fatal(err)
	}
	return sub
}

func TestEstimateModelEquations(t *testing.T) {
	g, err := sdf.Flatten("p", sdf.Pipe("p", sdf.F(work("a", 4, 100)), sdf.F(work("b", 4, 200))))
	if err != nil {
		t.Fatal(err)
	}
	d := gpu.M2090()
	prof := ProfileGraph(g, d)
	sub := wholeSub(t, g)
	est, err := EstimateSubgraph(sub, prof)
	if err != nil {
		t.Fatal(err)
	}
	p := est.Params

	// Recompute the model by hand for the chosen parameters.
	var tcomp float64
	for _, n := range sub.Sub.Nodes {
		f := float64(sub.Sub.Rep(n.ID))
		par := math.Min(f, float64(p.S))
		tcomp += f * prof.PerFiringCycles[sub.NodeOf[n.ID]] / par
	}
	D := float64(est.DBytes) * float64(p.W)
	tdt := prof.C1 * D / float64(p.F)
	tdb := prof.C2 * D / float64(p.F+p.W*p.S)
	texec := math.Max(tcomp, tdt) + tdb

	approx := func(a, b float64) bool { return math.Abs(a-b) < 1e-9*(1+math.Abs(b)) }
	if !approx(est.TcompUS, d.CyclesToUS(tcomp)) {
		t.Errorf("Tcomp = %v, want %v", est.TcompUS, d.CyclesToUS(tcomp))
	}
	if !approx(est.TdtUS, d.CyclesToUS(tdt)) {
		t.Errorf("Tdt = %v, want %v", est.TdtUS, d.CyclesToUS(tdt))
	}
	if !approx(est.TexecUS, d.CyclesToUS(texec)) {
		t.Errorf("Texec = %v, want %v", est.TexecUS, d.CyclesToUS(texec))
	}
	if !approx(est.TUS, est.TexecUS/float64(p.W)) {
		t.Errorf("T = %v, want Texec/W = %v", est.TUS, est.TexecUS/float64(p.W))
	}
}

func TestParamsRespectDeviceCaps(t *testing.T) {
	g, _ := sdf.Flatten("p", sdf.Pipe("p",
		sdf.F(work("a", 8, 50)), sdf.F(work("b", 8, 50)), sdf.F(work("c", 8, 50))))
	d := gpu.M2090()
	prof := ProfileGraph(g, d)
	est, err := EstimateSubgraph(wholeSub(t, g), prof)
	if err != nil {
		t.Fatal(err)
	}
	p := est.Params
	if p.W*p.S+p.F > d.MaxThreadsPerBlock {
		t.Errorf("threads %d exceed cap %d", p.W*p.S+p.F, d.MaxThreadsPerBlock)
	}
	if int64(p.W)*est.SMBytes > d.SharedMemPerSM {
		t.Errorf("SM usage %d exceeds %d", int64(p.W)*est.SMBytes, d.SharedMemPerSM)
	}
	if p.F%d.WarpSize != 0 {
		t.Errorf("F = %d not a warp multiple", p.F)
	}
}

func TestComputeVsIOBound(t *testing.T) {
	d := gpu.M2090()
	// Heavy arithmetic, tiny IO: compute bound.
	gc, _ := sdf.Flatten("c", sdf.Pipe("p", sdf.F(work("hot", 1, 100000))))
	ec, err := EstimateSubgraph(wholeSub(t, gc), ProfileGraph(gc, d))
	if err != nil {
		t.Fatal(err)
	}
	if !ec.ComputeBound() {
		t.Errorf("100k-op filter should be compute bound (Tcomp %v vs Tdt %v)", ec.TcompUS, ec.TdtUS)
	}
	// Tiny data movement kernel: the SM footprint is minute, so W rides up
	// to the thread cap and global-memory transfer dominates: IO bound.
	gi, _ := sdf.Flatten("i", sdf.Pipe("p", sdf.F(work("mv", 8, 1))))
	ei, err := EstimateSubgraph(wholeSub(t, gi), ProfileGraph(gi, d))
	if err != nil {
		t.Fatal(err)
	}
	if ei.ComputeBound() {
		t.Errorf("copy filter should be IO bound (Tcomp %v vs Tdt %v)", ei.TcompUS, ei.TdtUS)
	}
}

func TestInfeasibleSubgraph(t *testing.T) {
	// A single filter whose double-buffered IO exceeds 48KB shared memory:
	// pop=push=4096 tokens => 2*2*4096*4 = 64KB > 48KB.
	g, _ := sdf.Flatten("big", sdf.Pipe("p", sdf.F(work("huge", 4096, 1))))
	_, err := EstimateSubgraph(wholeSub(t, g), ProfileGraph(g, gpu.M2090()))
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestEngineMemoizes(t *testing.T) {
	g, _ := sdf.Flatten("p", sdf.Pipe("p", sdf.F(work("a", 4, 10)), sdf.F(work("b", 4, 10))))
	e := NewEngine(g, ProfileGraph(g, gpu.M2090()))
	set := sdf.SingletonSet(g.NumNodes(), 0)
	if _, err := e.EstimateSet(set); err != nil {
		t.Fatal(err)
	}
	if _, err := e.EstimateSet(set.Clone()); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Queries != 2 || st.Misses != 1 {
		t.Errorf("queries=%d misses=%d, want 2/1", st.Queries, st.Misses)
	}
	if st.Hits() != 1 || st.HitRate() != 0.5 {
		t.Errorf("hits=%d hitRate=%v, want 1/0.5", st.Hits(), st.HitRate())
	}
}

func TestCalibrateRecoversConstants(t *testing.T) {
	d := gpu.M2090()
	wantC1, wantC2 := 38.4, 11.2
	var samples []Sample
	for i := 1; i <= 20; i++ {
		p := Params{S: i%7 + 1, W: i%5 + 1, F: 32 * (i%4 + 1)}
		D := int64(512 * i)
		samples = append(samples, Sample{
			DBytes:    D,
			Params:    p,
			MeasDtUS:  d.CyclesToUS(wantC1 * float64(D) / float64(p.F)),
			MeasDbUS:  d.CyclesToUS(wantC2 * float64(D) / float64(p.F+p.W*p.S)),
			DeviceMHz: d.CoreClockMHz,
		})
	}
	c1, c2, err := Calibrate(samples)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c1-wantC1) > 1e-6 || math.Abs(c2-wantC2) > 1e-6 {
		t.Errorf("calibrated (%v, %v), want (%v, %v)", c1, c2, wantC1, wantC2)
	}
}

func TestCalibrateRejectsEmpty(t *testing.T) {
	if _, _, err := Calibrate(nil); err == nil {
		t.Fatal("expected error on empty samples")
	}
}

func TestRSquared(t *testing.T) {
	if r := RSquared([]float64{1, 2, 3}, []float64{1, 2, 3}); r != 1 {
		t.Errorf("perfect fit R2 = %v", r)
	}
	r := RSquared([]float64{1, 2, 3}, []float64{1.1, 1.9, 3.2})
	if r < 0.9 || r >= 1 {
		t.Errorf("near fit R2 = %v", r)
	}
}

// Property: estimates are positive, normalized by W, and merging a filter
// into a pipeline never reports negative times.
func TestEstimatePositiveQuick(t *testing.T) {
	d := gpu.M2090()
	f := func(opsRaw uint16, width uint8) bool {
		ops := int64(opsRaw)%5000 + 1
		n := int(width)%32 + 1
		g, err := sdf.Flatten("q", sdf.Pipe("p", sdf.F(work("a", n, ops)), sdf.F(work("b", n, ops))))
		if err != nil {
			return false
		}
		set := sdf.NewNodeSet(2)
		set.Add(0)
		set.Add(1)
		sub, err := g.Extract(set)
		if err != nil {
			return false
		}
		est, err := EstimateSubgraph(sub, ProfileGraph(g, d))
		if err != nil {
			return false
		}
		return est.TUS > 0 && est.TexecUS >= est.TUS && est.TcompUS > 0 && est.TdtUS > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestProfileGraphCostLaw(t *testing.T) {
	d := gpu.M2090()
	f := work("a", 3, 10) // 3 peek + 3 push tokens, 10 ops
	g, _ := sdf.Flatten("p", sdf.Pipe("p", sdf.F(f)))
	prof := ProfileGraph(g, d)
	want := d.FiringOverhead + 10*d.CyclesPerOp + 6*d.SMCyclesPerToken
	if got := prof.PerFiringCycles[0]; got != want {
		t.Errorf("per-firing cycles = %v, want %v", got, want)
	}
}
