package pee

// Forced-collision test for the memo's word-compare fallback: with the hash
// function pinned to a constant, every set lands in one bucket, so only the
// NodeSet.Equal scan keeps entries apart. Distinct sets must still return
// their own estimates and the collision counter must advance.

import (
	"testing"

	"streammap/internal/gpu"
	"streammap/internal/sdf"
)

func TestMemoCollisionFallback(t *testing.T) {
	orig := setHash
	setHash = func(sdf.NodeSet) uint64 { return 42 }
	defer func() { setHash = orig }()

	g, err := sdf.Flatten("p", sdf.Pipe("p",
		sdf.F(work("a", 4, 10)),
		sdf.F(work("b", 4, 20)),
		sdf.F(work("c", 4, 30))))
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(g, ProfileGraph(g, gpu.M2090()))

	sets := []sdf.NodeSet{
		sdf.SingletonSet(g.NumNodes(), 0),
		sdf.SingletonSet(g.NumNodes(), 1),
		sdf.SingletonSet(g.NumNodes(), 2),
	}
	ests := make([]*Estimate, len(sets))
	for i, s := range sets {
		est, err := e.EstimateSet(s)
		if err != nil {
			t.Fatalf("set %v: %v", s, err)
		}
		ests[i] = est
	}
	// All three hashed to bucket 42: inserts 2 and 3 are collisions.
	if st := e.Stats(); st.Collisions != 2 {
		t.Fatalf("collisions = %d, want 2", st.Collisions)
	}
	// Re-querying must hit the right entry despite the shared bucket.
	for i, s := range sets {
		est, err := e.EstimateSet(s)
		if err != nil {
			t.Fatalf("requery set %v: %v", s, err)
		}
		if est != ests[i] {
			t.Fatalf("set %v returned a different entry on re-query", s)
		}
	}
	// The three filters have different Ops, so their compute times must
	// differ — shared entries would indicate misattribution.
	if ests[0] == ests[1] || ests[1] == ests[2] ||
		ests[0].TcompUS == ests[1].TcompUS || ests[1].TcompUS == ests[2].TcompUS {
		t.Fatalf("distinct sets share estimates under forced collisions: %+v %+v %+v",
			ests[0], ests[1], ests[2])
	}
	if st := e.Stats(); st.Queries != 6 || st.Misses != 3 || st.Hits() != 3 {
		t.Fatalf("stats %+v, want 6 queries / 3 misses / 3 hits", e.Stats())
	}
}
