package pdg

import (
	"testing"

	"streammap/internal/gpu"
	"streammap/internal/partition"
	"streammap/internal/pee"
	"streammap/internal/sdf"
)

func buildParts(t *testing.T, s sdf.Stream) (*sdf.Graph, []*partition.Partition) {
	t.Helper()
	g, err := sdf.Flatten("pdgtest", s)
	if err != nil {
		t.Fatal(err)
	}
	eng := pee.NewEngine(g, pee.ProfileGraph(g, gpu.M2090()))
	res, err := partition.Run(g, eng)
	if err != nil {
		t.Fatal(err)
	}
	return g, res.Parts
}

func hot(name string, n int, ops int64) *sdf.Filter {
	return sdf.NewFilter(name, n, n, 0, ops, func(w *sdf.Work) {
		copy(w.Out[0], w.In[0][:n])
	})
}

func TestBuildChainPDG(t *testing.T) {
	// Compute-heavy wide split-join: stays as several partitions.
	g, parts := buildParts(t, sdf.SplitDupRR("sj", 512, []int{512, 512},
		sdf.F(hot("a", 512, 3000000)), sdf.F(hot("b", 512, 3000000))))
	if len(parts) < 3 {
		t.Skip("partitioner merged; nothing to check")
	}
	p, err := Build(g, parts)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumParts() != len(parts) {
		t.Errorf("NumParts = %d, want %d", p.NumParts(), len(parts))
	}
	// Every partition has positive workload; host I/O lands on the
	// partitions holding the primary ports.
	var hostIn, hostOut int64
	for i := 0; i < p.NumParts(); i++ {
		if p.WorkloadUS(i) <= 0 {
			t.Errorf("partition %d has non-positive workload", i)
		}
		hostIn += p.HostInBytes[i]
		hostOut += p.HostOutBytes[i]
	}
	if hostIn != 512*sdf.TokenBytes {
		t.Errorf("host-in bytes = %d, want %d", hostIn, 512*sdf.TokenBytes)
	}
	if hostOut != 1024*sdf.TokenBytes {
		t.Errorf("host-out bytes = %d, want %d", hostOut, 1024*sdf.TokenBytes)
	}
	// Topological order respects edges.
	pos := make([]int, p.NumParts())
	for i, pi := range p.Topo {
		pos[pi] = i
	}
	for _, e := range p.Edges {
		if pos[e.From] >= pos[e.To] {
			t.Errorf("edge %d->%d violates topo order", e.From, e.To)
		}
		if e.Bytes <= 0 {
			t.Errorf("edge %d->%d has no weight", e.From, e.To)
		}
	}
}

func TestBuildRejectsPartialCover(t *testing.T) {
	g, parts := buildParts(t, sdf.Pipe("p", sdf.F(hot("a", 8, 10)), sdf.F(hot("b", 8, 10))))
	if _, err := Build(g, parts[:0]); err == nil {
		t.Error("empty partition list should fail")
	}
}

func TestSyntheticTopoAndCycle(t *testing.T) {
	p, err := Synthetic([]float64{1, 2, 3}, []Edge{{From: 0, To: 1}, {From: 1, To: 2}}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Topo) != 3 || p.Topo[0] != 0 {
		t.Errorf("topo = %v", p.Topo)
	}
	if _, err := Synthetic([]float64{1, 2}, []Edge{{From: 0, To: 1}, {From: 1, To: 0}}, nil, nil); err == nil {
		t.Error("cyclic PDG should fail")
	}
}

func TestTotalCutBytes(t *testing.T) {
	p, err := Synthetic([]float64{1, 1}, []Edge{{From: 0, To: 1, Bytes: 100}}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.TotalCutBytes() != 100 {
		t.Errorf("TotalCutBytes = %d", p.TotalCutBytes())
	}
}
