package pdg

import (
	"fmt"

	"streammap/internal/artifact"
	"streammap/internal/partition"
	"streammap/internal/sdf"
)

// Export returns the PDG's wire form (package pdg's explicit export/import
// form).
func (p *PDG) Export() artifact.PDG {
	out := artifact.PDG{
		WorkUS:       append([]float64(nil), p.WorkUS...),
		HostInBytes:  append([]int64(nil), p.HostInBytes...),
		HostOutBytes: append([]int64(nil), p.HostOutBytes...),
		Topo:         append([]int(nil), p.Topo...),
	}
	for _, e := range p.Edges {
		ae := artifact.PDGEdge{From: e.From, To: e.To, Bytes: e.Bytes}
		for _, eid := range e.StreamCut {
			ae.StreamCut = append(ae.StreamCut, int(eid))
		}
		out.Edges = append(out.Edges, ae)
	}
	return out
}

// Import rebuilds a PDG from its wire form over an already-imported
// partitioning. Edges, workloads and host I/O are restored verbatim; only
// the topological order is re-verified (it must be a valid order of the
// restored edges).
func Import(g *sdf.Graph, parts []*partition.Partition, a artifact.PDG) (*PDG, error) {
	P := len(parts)
	if len(a.WorkUS) != P || len(a.HostInBytes) != P || len(a.HostOutBytes) != P || len(a.Topo) != P {
		return nil, fmt.Errorf("pdg: import: sections sized %d/%d/%d/%d for %d partitions",
			len(a.WorkUS), len(a.HostInBytes), len(a.HostOutBytes), len(a.Topo), P)
	}
	p := &PDG{
		Graph:        g,
		Parts:        parts,
		WorkUS:       append([]float64(nil), a.WorkUS...),
		HostInBytes:  append([]int64(nil), a.HostInBytes...),
		HostOutBytes: append([]int64(nil), a.HostOutBytes...),
		Topo:         append([]int(nil), a.Topo...),
	}
	for _, ae := range a.Edges {
		if ae.From < 0 || ae.From >= P || ae.To < 0 || ae.To >= P {
			return nil, fmt.Errorf("pdg: import: edge %d->%d out of range", ae.From, ae.To)
		}
		e := Edge{From: ae.From, To: ae.To, Bytes: ae.Bytes}
		for _, eid := range ae.StreamCut {
			e.StreamCut = append(e.StreamCut, sdf.EdgeID(eid))
		}
		p.Edges = append(p.Edges, e)
	}
	// The stored order must topologically sort the stored edges.
	pos := make([]int, P)
	seen := make([]bool, P)
	for i, pi := range p.Topo {
		if pi < 0 || pi >= P || seen[pi] {
			return nil, fmt.Errorf("pdg: import: topo order is not a permutation")
		}
		seen[pi] = true
		pos[pi] = i
	}
	for _, e := range p.Edges {
		if pos[e.From] >= pos[e.To] {
			return nil, fmt.Errorf("pdg: import: stored order places %d after its consumer %d", e.From, e.To)
		}
	}
	return p, nil
}
