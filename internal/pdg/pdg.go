// Package pdg builds the Partition Dependence Graph of §3.2.2 (Figure 3.4):
// the quotient of the stream graph under a partitioning. Nodes are
// partitions annotated with their estimated workload; an edge (p_i, p_j)
// exists when the stream graph connects the two partitions, weighted by
// D_ij — the total bytes per parent-graph steady-state iteration crossing
// the cut. Host I/O (the primary inputs and outputs of the application) is
// tracked per partition, since that traffic loads the PCIe tree too.
package pdg

import (
	"fmt"
	"sort"

	"streammap/internal/partition"
	"streammap/internal/sdf"
)

// Edge is one PDG edge with aggregated weight.
type Edge struct {
	From, To  int   // partition indices
	Bytes     int64 // bytes per parent steady-state iteration (D_ij)
	StreamCut []sdf.EdgeID
}

// PDG is the partition dependence graph.
type PDG struct {
	Graph *sdf.Graph
	Parts []*partition.Partition
	Edges []Edge

	// WorkUS is T_i per partition: estimated execution time per parent
	// steady-state iteration, in microseconds.
	WorkUS []float64

	HostInBytes  []int64 // per partition: primary input bytes / parent iteration
	HostOutBytes []int64 // per partition: primary output bytes / parent iteration

	Topo []int // partition indices in topological order
}

// NumParts returns the partition count P.
func (p *PDG) NumParts() int { return len(p.WorkUS) }

// WorkloadUS returns partition i's estimated time per parent iteration (the
// T_i fed to the mapping step, before fragment scaling).
func (p *PDG) WorkloadUS(i int) float64 { return p.WorkUS[i] }

// Build constructs the PDG and verifies the quotient is acyclic (convex
// partitions of a DAG always are; feedback loops must have been collapsed by
// the partitioner).
func Build(g *sdf.Graph, parts []*partition.Partition) (*PDG, error) {
	p := &PDG{
		Graph:        g,
		Parts:        parts,
		WorkUS:       make([]float64, len(parts)),
		HostInBytes:  make([]int64, len(parts)),
		HostOutBytes: make([]int64, len(parts)),
	}
	for i, part := range parts {
		p.WorkUS[i] = part.TWus()
	}
	owner := make([]int, g.NumNodes())
	for i := range owner {
		owner[i] = -1
	}
	for pi, part := range parts {
		for _, m := range part.Set.Members() {
			if owner[m] != -1 {
				return nil, fmt.Errorf("pdg: node %d owned by partitions %d and %d", m, owner[m], pi)
			}
			owner[m] = pi
		}
	}
	for n, o := range owner {
		if o == -1 {
			return nil, fmt.Errorf("pdg: node %d not in any partition", n)
		}
	}

	type key struct{ from, to int }
	agg := map[key]*Edge{}
	var order []key
	for _, e := range g.Edges {
		fi, ti := owner[e.Src], owner[e.Dst]
		if fi == ti {
			continue
		}
		k := key{fi, ti}
		ed, ok := agg[k]
		if !ok {
			ed = &Edge{From: fi, To: ti}
			agg[k] = ed
			order = append(order, k)
		}
		ed.Bytes += g.EdgeBytes(e)
		ed.StreamCut = append(ed.StreamCut, e.ID)
	}
	sort.Slice(order, func(a, b int) bool {
		if order[a].from != order[b].from {
			return order[a].from < order[b].from
		}
		return order[a].to < order[b].to
	})
	for _, k := range order {
		p.Edges = append(p.Edges, *agg[k])
	}

	for _, port := range g.InputPorts() {
		p.HostInBytes[owner[port.Node]] += g.PortTokens(port, true) * sdf.TokenBytes
	}
	for _, port := range g.OutputPorts() {
		p.HostOutBytes[owner[port.Node]] += g.PortTokens(port, false) * sdf.TokenBytes
	}

	topo, err := p.topoOrder()
	if err != nil {
		return nil, err
	}
	p.Topo = topo
	return p, nil
}

// Synthetic builds a PDG directly from workloads and edges, without a stream
// graph behind it. Used by tests and by standalone mapping experiments.
func Synthetic(workUS []float64, edges []Edge, hostIn, hostOut []int64) (*PDG, error) {
	p := &PDG{
		WorkUS:       append([]float64(nil), workUS...),
		Edges:        append([]Edge(nil), edges...),
		HostInBytes:  append([]int64(nil), hostIn...),
		HostOutBytes: append([]int64(nil), hostOut...),
	}
	if p.HostInBytes == nil {
		p.HostInBytes = make([]int64, len(workUS))
	}
	if p.HostOutBytes == nil {
		p.HostOutBytes = make([]int64, len(workUS))
	}
	topo, err := p.topoOrder()
	if err != nil {
		return nil, err
	}
	p.Topo = topo
	return p, nil
}

func (p *PDG) topoOrder() ([]int, error) {
	n := p.NumParts()
	indeg := make([]int, n)
	for _, e := range p.Edges {
		indeg[e.To]++
	}
	var queue []int
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	var order []int
	for len(queue) > 0 {
		sort.Ints(queue)
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, e := range p.Edges {
			if e.From == v {
				indeg[e.To]--
				if indeg[e.To] == 0 {
					queue = append(queue, e.To)
				}
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("pdg: partition quotient has a cycle (non-convex partitioning?)")
	}
	return order, nil
}

// TotalCutBytes sums all inter-partition traffic per parent iteration.
func (p *PDG) TotalCutBytes() int64 {
	var t int64
	for _, e := range p.Edges {
		t += e.Bytes
	}
	return t
}
