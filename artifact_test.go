package streammap

import (
	"context"
	"testing"
	"time"
)

// TestArtifactQuickstart exercises the public artifact surface end to end,
// exactly as the package comment advertises: compile, export, encode,
// decode, execute without recompiling, and warm-start a service from disk.
func TestArtifactQuickstart(t *testing.T) {
	g, err := Flatten("toy", quickstartProgram())
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(g, Options{Topo: PairedTree(2)})
	if err != nil {
		t.Fatal(err)
	}

	a, err := c.Artifact()
	if err != nil {
		t.Fatal(err)
	}
	data, err := a.Encode()
	if err != nil {
		t.Fatal(err)
	}
	b, err := DecodeArtifact(data)
	if err != nil {
		t.Fatal(err)
	}
	if b.Format != ArtifactFormatVersion {
		t.Errorf("decoded format %d, want %d", b.Format, ArtifactFormatVersion)
	}
	if b.Fingerprint != g.Fingerprint() {
		t.Errorf("artifact fingerprint %016x != graph %016x", b.Fingerprint, g.Fingerprint())
	}
	res, err := b.Execute(16)
	if err != nil {
		t.Fatal(err)
	}
	if res.PerFragmentUS <= 0 {
		t.Errorf("decoded execution per-fragment %v", res.PerFragmentUS)
	}

	// Two-tier service: a second service over the same directory serves the
	// graph without compiling.
	dir := t.TempDir()
	ctx := context.Background()
	s1 := NewService(ServiceConfig{CacheDir: dir})
	if _, err := s1.Compile(ctx, g, Options{Topo: PairedTree(2)}); err != nil {
		t.Fatal(err)
	}
	// The disk write happens off the compile critical path; rendezvous with
	// it before starting the second service.
	for deadline := time.Now().Add(10 * time.Second); s1.Stats().DiskWrites == 0; {
		if s1.Stats().DiskErrors > 0 || time.Now().After(deadline) {
			t.Fatalf("artifact never reached disk: %+v", s1.Stats())
		}
		time.Sleep(2 * time.Millisecond)
	}
	s2 := NewService(ServiceConfig{CacheDir: dir})
	warm, err := s2.Compile(ctx, g, Options{Topo: PairedTree(2)})
	if err != nil {
		t.Fatal(err)
	}
	st := s2.Stats()
	if st.DiskHits != 1 || st.Misses != 0 {
		t.Fatalf("warm start stats %+v", st)
	}
	if len(warm.Stages) != 0 {
		t.Errorf("disk-served result ran pipeline stages: %v", warm.Stages)
	}
}
