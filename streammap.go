// Package streammap is a communication-aware compiler that maps stream
// graphs (StreamIt-style synchronous dataflow programs) onto multi-GPU
// platforms, reproducing "Communication-aware Mapping of Stream Graphs for
// Multi-GPU Platforms" (Nguyen, 2016).
//
// The flow profiles every filter for the target GPU, partitions the graph
// with a four-phase heuristic driven by a GPU performance estimation engine,
// solves the partition-to-GPU assignment with an ILP over the PCIe tree
// topology, and emits an executable plan that runs — pipelined across
// fragments, with peer-to-peer transfers — on the included discrete-event
// multi-GPU simulator.
//
// Quick start:
//
//	s := streammap.Pipe("app", streammap.F(myFilter), ...)
//	g, err := streammap.Flatten("app", s)
//	c, err := streammap.Compile(g, streammap.Options{Topo: streammap.PairedTree(4)})
//	res, err := c.Execute(inputs, 64)
//
// Compilation runs as a staged pass-pipeline (profile -> partition -> pdg
// -> map -> plan) whose hot passes are parallel and deterministic; each
// Compiled records per-stage timings. For servers compiling many graphs,
// NewService returns a concurrent compile service that deduplicates
// identical in-flight requests and caches results in an LRU keyed by
// (graph fingerprint, device, topology, options):
//
//	svc := streammap.NewService(streammap.ServiceConfig{})
//	c, err := svc.Compile(ctx, g, opts) // safe from any number of goroutines
//
// Compilations export as versioned, self-contained artifacts that outlive
// the process: Compiled.Artifact() captures partitions, kernel parameters,
// the partition dependence graph, the assignment with its cost and link
// loads, and the executable plan in a stable encoding keyed by the graph
// fingerprint and normalized options. An artifact encodes to deterministic
// bytes, decodes on any machine, and executes on the simulator without
// recompiling:
//
//	a, err := c.Artifact()
//	data, err := a.Encode()                  // persist / ship
//	b, err := streammap.DecodeArtifact(data) // later, elsewhere
//	res, err := b.Execute(64)                // timing run, no compilation
//
// Setting ServiceConfig.CacheDir turns the compile service's cache into
// two tiers — the in-memory LRU in front of a content-addressed on-disk
// artifact store — so a restarted service warm-starts from disk.
//
// CompileCtx is the cancellable form of Compile. See the examples
// directory for complete programs and DESIGN.md for the architecture.
package streammap

import (
	"context"

	"streammap/internal/artifact"
	"streammap/internal/core"
	"streammap/internal/gpu"
	"streammap/internal/gpusim"
	"streammap/internal/sdf"
	"streammap/internal/topology"
)

// Re-exported stream-graph construction API (package sdf).
type (
	// Token is the unit of channel data.
	Token = sdf.Token
	// Filter is one actor.
	Filter = sdf.Filter
	// Work is the per-firing execution context.
	Work = sdf.Work
	// Stream is a structural composition node.
	Stream = sdf.Stream
	// Graph is a flattened stream graph.
	Graph = sdf.Graph
)

// Structural composition.
var (
	// F lifts a Filter into a Stream.
	F = sdf.F
	// Pipe composes streams sequentially.
	Pipe = sdf.Pipe
	// Split composes parallel branches with explicit splitter/joiner.
	Split = sdf.Split
	// SplitDupRR is duplicate-split / round-robin-join.
	SplitDupRR = sdf.SplitDupRR
	// SplitRRRR is round-robin split and join.
	SplitRRRR = sdf.SplitRRRR
	// LoopOf builds a feedback loop.
	LoopOf = sdf.LoopOf
	// Flatten elaborates a Stream into a Graph.
	Flatten = sdf.Flatten
	// NewFilter builds a single-input single-output filter.
	NewFilter = sdf.NewFilter
	// Identity copies n tokens per firing.
	Identity = sdf.Identity
)

// Devices and topologies.
type (
	// Device is a GPU model.
	Device = gpu.Device
	// Topology is a PCIe tree.
	Topology = topology.Tree
)

var (
	// M2090 is the paper's evaluation GPU.
	M2090 = gpu.M2090
	// C2070 is the previous work's GPU.
	C2070 = gpu.C2070
	// FourGPUTree is the paper's Figure 3.3 machine.
	FourGPUTree = topology.FourGPUTree
	// PairedTree builds a machine with g GPUs attached pairwise.
	PairedTree = topology.PairedTree
	// NewTopology starts a custom PCIe tree.
	NewTopology = topology.NewBuilder
)

// Compilation.
type (
	// Options configures the mapping flow.
	Options = core.Options
	// Compiled is the result: partitions, assignment, executable plan, and
	// per-stage pipeline timings.
	Compiled = core.Compiled
	// PartitionerKind selects the partitioning algorithm.
	PartitionerKind = core.PartitionerKind
	// MapperKind selects the mapper.
	MapperKind = core.MapperKind
	// StageMetric is one pipeline pass's recorded wall-clock cost.
	StageMetric = core.StageMetric
	// Service is a concurrent compile service with an LRU result cache.
	Service = core.Service
	// ServiceConfig tunes a Service.
	ServiceConfig = core.ServiceConfig
	// ServiceStats is a snapshot of a Service's counters.
	ServiceStats = core.ServiceStats
)

// Partitioner and mapper choices.
const (
	// Alg1 is the paper's four-phase partitioning heuristic.
	Alg1 = core.Alg1
	// PrevWorkPartitioner merges until the shared-memory limit ([7]).
	PrevWorkPartitioner = core.PrevWorkPart
	// SinglePartition maps the whole graph as one kernel ([10]).
	SinglePartition = core.SinglePart
	// ILPMapper is the communication-aware mapping of §3.2.2.
	ILPMapper = core.ILPMapper
	// PrevWorkMapper is workload-only balancing with host staging.
	PrevWorkMapper = core.PrevWorkMap
)

// Compile runs the full mapping flow on a stream graph.
func Compile(g *Graph, opts Options) (*Compiled, error) {
	return core.Compile(g, opts)
}

// CompileCtx is Compile under a context: cancellation aborts between
// pipeline stages and inside the parallel passes.
func CompileCtx(ctx context.Context, g *Graph, opts Options) (*Compiled, error) {
	return core.CompileCtx(ctx, g, opts)
}

// NewService returns a concurrent compile service: many goroutines may
// Compile through it at once; identical in-flight requests are deduplicated
// and results cached in an LRU keyed by (graph fingerprint, device,
// topology, options), backed — when ServiceConfig.CacheDir is set — by a
// content-addressed on-disk artifact store that survives restarts.
func NewService(cfg ServiceConfig) *Service {
	return core.NewService(cfg)
}

// Compile artifacts.
type (
	// Artifact is a versioned, self-contained, serializable compilation
	// result: everything needed to execute or inspect a compiled mapping,
	// with no reference into compiler internals. Obtain one with
	// Compiled.Artifact, persist it with Encode, and run it — without
	// recompiling — with Execute (timing) or ExecuteWith (functional,
	// against the original graph).
	Artifact = artifact.Artifact
	// Result is the outcome of a simulated pipelined multi-GPU run.
	Result = gpusim.Result
)

// ArtifactFormatVersion is the wire-format version this build encodes and
// decodes. DecodeArtifact rejects artifacts from other versions.
const ArtifactFormatVersion = artifact.FormatVersion

// DecodeArtifact parses and validates an encoded compile artifact. It
// rejects truncated or corrupt input and artifacts written by other format
// versions.
func DecodeArtifact(data []byte) (*Artifact, error) {
	return artifact.Decode(data)
}
