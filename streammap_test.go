package streammap

import (
	"context"
	"sync"
	"testing"
	"time"

	"streammap/internal/mapping"
	"streammap/internal/sdf"
)

// quickstartProgram builds the doc-comment quick-start chain: scale ->
// (lowpass | highpass) -> mix over frames of 16 samples.
func quickstartProgram() Stream {
	const frame = 16
	scale := NewFilter("Scale", frame, frame, 0, frame, func(w *Work) {
		for i := 0; i < frame; i++ {
			w.Out[0][i] = w.In[0][i] * 0.5
		}
	})
	lowpass := NewFilter("LowPass", frame, frame, 0, 3*frame, func(w *Work) {
		prev := Token(0)
		for i := 0; i < frame; i++ {
			w.Out[0][i] = (w.In[0][i] + prev) * 0.5
			prev = w.In[0][i]
		}
	})
	highpass := NewFilter("HighPass", frame, frame, 0, 3*frame, func(w *Work) {
		prev := Token(0)
		for i := 0; i < frame; i++ {
			w.Out[0][i] = (w.In[0][i] - prev) * 0.5
			prev = w.In[0][i]
		}
	})
	mix := NewFilter("Mix", 2*frame, frame, 0, 2*frame, func(w *Work) {
		for i := 0; i < frame; i++ {
			w.Out[0][i] = w.In[0][i] + w.In[0][frame+i]
		}
	})
	return Pipe("toy",
		F(scale),
		SplitDupRR("bands", frame, []int{frame, frame}, F(lowpass), F(highpass)),
		F(mix))
}

// TestQuickstartEndToEnd exercises the re-exported Pipe / Flatten / Compile
// / Execute path of the package comment and verifies the simulated output
// against the host interpreter.
func TestQuickstartEndToEnd(t *testing.T) {
	g, err := Flatten("toy", quickstartProgram())
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(g, Options{Topo: PairedTree(2), FragmentIters: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Parts.Parts) < 1 {
		t.Fatal("no partitions")
	}
	if len(c.Stages) == 0 {
		t.Error("compiled result carries no stage metrics")
	}

	const fragments = 4
	in := make([]Token, c.InputNeed(0, fragments))
	for i := range in {
		in[i] = Token(i % 17)
	}
	res, err := c.Execute([][]Token{in}, fragments)
	if err != nil {
		t.Fatal(err)
	}

	ref, err := sdf.NewInterp(g)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Run(8*fragments, [][]Token{in})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outputs[0]) != len(want[0]) {
		t.Fatalf("output %d tokens, interpreter %d", len(res.Outputs[0]), len(want[0]))
	}
	for i := range want[0] {
		if res.Outputs[0][i] != want[0][i] {
			t.Fatalf("output mismatch at token %d", i)
		}
	}
}

// TestCompileCtxCancel: the public cancellable entry point aborts.
func TestCompileCtxCancel(t *testing.T) {
	g, err := Flatten("toy", quickstartProgram())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := CompileCtx(ctx, g, Options{}); err == nil {
		t.Error("cancelled compile succeeded")
	}
}

// TestServiceConcurrentIdenticalPlans compiles the same graph from many
// goroutines through the service and asserts cache hits and identical
// plans.
func TestServiceConcurrentIdenticalPlans(t *testing.T) {
	svc := NewService(ServiceConfig{})
	g, err := Flatten("toy", quickstartProgram())
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{
		Topo:       PairedTree(2),
		MapOptions: mapping.Options{TimeBudget: 300 * time.Millisecond},
	}

	const N = 64
	results := make([]*Compiled, N)
	errs := make([]error, N)
	var wg sync.WaitGroup
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = svc.Compile(context.Background(), g, opts)
		}(i)
	}
	wg.Wait()

	for i := 0; i < N; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
	}
	first := results[0]
	for i := 1; i < N; i++ {
		c := results[i]
		if c != first {
			// A different *Compiled is only possible if the first entry was
			// evicted mid-flood; with the default cache size it is a bug.
			t.Fatalf("request %d got a distinct compilation", i)
		}
	}
	st := svc.Stats()
	if st.Misses != 1 {
		t.Errorf("%d compilations ran for %d identical requests, want 1", st.Misses, N)
	}
	if st.Hits != N-1 {
		t.Errorf("%d cache hits, want %d", st.Hits, N-1)
	}

	// The plan every caller got is the same deterministic result a direct
	// compile of a structurally identical graph produces.
	g2, err := Flatten("toy", quickstartProgram())
	if err != nil {
		t.Fatal(err)
	}
	direct, err := Compile(g2, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(direct.Parts.Parts) != len(first.Parts.Parts) {
		t.Errorf("service plan has %d partitions, direct compile %d",
			len(first.Parts.Parts), len(direct.Parts.Parts))
	}
	if direct.Assign.Objective != first.Assign.Objective {
		t.Errorf("service objective %v, direct %v", first.Assign.Objective, direct.Assign.Objective)
	}
	for i := range direct.Assign.GPUOf {
		if direct.Assign.GPUOf[i] != first.Assign.GPUOf[i] {
			t.Fatalf("assignment differs at partition %d", i)
		}
	}
}
