package streammap

// One benchmark per table and figure of the paper's evaluation, plus
// ablation and component micro-benchmarks. Each evaluation bench runs the
// corresponding experiment harness end to end and reports the headline
// metric via b.ReportMetric, so `go test -bench` regenerates the paper's
// artifacts:
//
//	BenchmarkFig41_EstimationAccuracy   -> Figure 4.1 (R^2)
//	BenchmarkFig42_Scalability          -> Figure 4.2 (avg final 4-GPU speedup)
//	BenchmarkFig43_SOSPComparison       -> Figure 4.3 (avg 4-GPU SOSP ratio)
//	BenchmarkFig44_SOSPValidity         -> Figure 4.4 (max SOSP deviation)
//	BenchmarkTable51_SplitterElim       -> Table 5.1 (best elimination speedup)
//
// cmd/experiments prints the full tables at full scale.

import (
	"testing"
	"time"

	"streammap/internal/apps"
	"streammap/internal/core"
	"streammap/internal/experiments"
	"streammap/internal/gpusim"
	"streammap/internal/ilp"
	"streammap/internal/mapping"
	"streammap/internal/partition"
	"streammap/internal/pee"
	"streammap/internal/sdf"
	"streammap/internal/topology"
)

func benchCfg() experiments.Config {
	c := experiments.Tiny()
	c.ILPBudget = 300 * time.Millisecond
	return c
}

func BenchmarkFig41_EstimationAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, res, err := experiments.Fig41(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.R2, "R2")
		b.ReportMetric(float64(len(res.Points)), "partitions")
	}
}

func BenchmarkFig42_Scalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, rows, err := experiments.Fig42(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		final := map[string]experiments.Fig42Row{}
		for _, r := range rows {
			if p, ok := final[r.App]; !ok || r.N > p.N {
				final[r.App] = r
			}
		}
		var sum float64
		for _, r := range final {
			sum += r.SpeedupG[4]
		}
		b.ReportMetric(sum/float64(len(final)), "avg4GPUspeedup")
	}
}

func BenchmarkFig43_SOSPComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, rows, err := experiments.Fig43(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		var sum float64
		for _, r := range rows {
			sum += r.SOSPOur[4] / r.SOSPPrev[4]
		}
		b.ReportMetric(sum/float64(len(rows)), "avgSOSPratio4")
	}
}

func BenchmarkFig44_SOSPValidity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, rows, err := experiments.Fig44(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		var worst float64
		for _, r := range rows {
			if r.Deviation > worst {
				worst = r.Deviation
			}
		}
		b.ReportMetric(worst*100, "maxDeviation%")
	}
}

func BenchmarkTable51_SplitterElim(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, rows, err := experiments.Table51(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		var best float64
		for _, r := range rows {
			if r.Speedup > best {
				best = r.Speedup
			}
		}
		b.ReportMetric(best, "bestSpeedup")
	}
}

func BenchmarkAblation_MappingChoices(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, rows, err := experiments.Ablations(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		var gain float64
		for _, r := range rows {
			gain += r.CommBlind / r.CommAware
		}
		b.ReportMetric(gain/float64(len(rows)), "commAwareGain")
	}
}

func BenchmarkAblation_SharedVsStaticAllocator(b *testing.B) {
	// Design-choice ablation: the optimistic lifetime-sharing allocator vs
	// the static allocation the code generator uses (DESIGN.md S8).
	app, _ := apps.ByName("DES")
	g, err := apps.BuildGraph(app, 8)
	if err != nil {
		b.Fatal(err)
	}
	all := sdf.NewNodeSet(g.NumNodes())
	for _, n := range g.Nodes {
		all.Add(n.ID)
	}
	sub, err := g.Extract(all)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		static, err := smreqAnalyze(sub, false)
		if err != nil {
			b.Fatal(err)
		}
		shared, err := smreqAnalyze(sub, true)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(static)/float64(shared), "staticOverShared")
	}
}

// --- component micro-benchmarks ---

func BenchmarkBalanceSolverDES32(b *testing.B) {
	app, _ := apps.ByName("DES")
	s, err := app.Build(32)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sdf.Flatten("des32", s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPartitionerDES16(b *testing.B) {
	app, _ := apps.ByName("DES")
	g, err := apps.BuildGraph(app, 16)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := pee.NewEngine(g, pee.ProfileGraph(g, M2090()))
		if _, err := partition.Run(g, eng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkILPMapping12x4(b *testing.B) {
	work := []float64{300, 120, 450, 80, 200, 340, 90, 150, 510, 70, 260, 180}
	var edges []pdgEdge
	for i := 0; i < 11; i++ {
		edges = append(edges, pdgEdge{From: i, To: i + 1, Bytes: int64(100000 * (i%4 + 1))})
	}
	prob := newSynthProblem(work, edges, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mapping.Solve(prob, mapping.Options{ForceILP: true, TimeBudget: 5 * time.Second}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulatorDES16x4GPU(b *testing.B) {
	app, _ := apps.ByName("DES")
	g, err := apps.BuildGraph(app, 16)
	if err != nil {
		b.Fatal(err)
	}
	c, err := core.Compile(g, core.Options{Topo: topology.PairedTree(4)})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gpusim.RunTiming(c.Plan, 64); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInterpFFT256(b *testing.B) {
	app, _ := apps.ByName("FFT")
	g, err := apps.BuildGraph(app, 256)
	if err != nil {
		b.Fatal(err)
	}
	it, err := sdf.NewInterp(g)
	if err != nil {
		b.Fatal(err)
	}
	in := make([]Token, 512)
	for i := range in {
		in[i] = Token(i % 37)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it.Feed(0, in)
		if err := it.RunIterations(1); err != nil {
			b.Fatal(err)
		}
		it.Drain(0)
	}
}

func BenchmarkILPSolverKnapsack30(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := ilp.NewModel("knap")
		terms := make([]ilp.Term, 30)
		for j := 0; j < 30; j++ {
			v := m.AddBinary(-float64((j*37)%23+1), "x")
			terms[j] = ilp.Term{Var: v, Coef: float64((j*53)%17 + 1)}
		}
		m.AddConstr(terms, ilp.LE, 80, "cap")
		if s := m.Solve(ilp.Options{TimeBudget: 5 * time.Second}); s.Status != ilp.Optimal {
			b.Fatalf("status %v", s.Status)
		}
	}
}
